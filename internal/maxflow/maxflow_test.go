package maxflow

import (
	"testing"

	"structura/internal/stats"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(1); err == nil {
		t.Error("n < 2 should error")
	}
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.AddArc(0, 9, 1); err == nil {
		t.Error("out-of-range arc should error")
	}
	if err := nw.AddArc(0, 0, 1); err == nil {
		t.Error("self-arc should error")
	}
	if err := nw.AddArc(0, 1, -1); err == nil {
		t.Error("negative capacity should error")
	}
	if _, err := nw.PushRelabel(0, 0); err == nil {
		t.Error("src == sink should error")
	}
	if _, err := nw.Dinic(-1, 1); err == nil {
		t.Error("bad src should error")
	}
}

func TestSimpleChain(t *testing.T) {
	nw, _ := NewNetwork(3)
	_ = nw.AddArc(0, 1, 5)
	_ = nw.AddArc(1, 2, 3)
	pr, err := nw.PushRelabel(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Value != 3 {
		t.Errorf("push-relabel = %d, want 3", pr.Value)
	}
	dn, err := nw.Dinic(0, 2)
	if err != nil || dn.Value != 3 {
		t.Errorf("dinic = %d, %v; want 3", dn.Value, err)
	}
	if err := nw.VerifyHeightOrientation(pr); err != nil {
		t.Errorf("height invariant: %v", err)
	}
}

func TestClassicDiamond(t *testing.T) {
	// Source 0, sink 3; two disjoint paths of capacity 2 and 3, plus a
	// cross arc enabling 1 extra unit.
	nw, _ := NewNetwork(4)
	_ = nw.AddArc(0, 1, 3)
	_ = nw.AddArc(0, 2, 2)
	_ = nw.AddArc(1, 3, 2)
	_ = nw.AddArc(2, 3, 3)
	_ = nw.AddArc(1, 2, 1)
	pr, _ := nw.PushRelabel(0, 3)
	dn, _ := nw.Dinic(0, 3)
	if pr.Value != 5 || dn.Value != 5 {
		t.Errorf("flows = %d, %d; want 5", pr.Value, dn.Value)
	}
}

func TestDisconnectedSink(t *testing.T) {
	nw, _ := NewNetwork(4)
	_ = nw.AddArc(0, 1, 7)
	pr, _ := nw.PushRelabel(0, 3)
	dn, _ := nw.Dinic(0, 3)
	if pr.Value != 0 || dn.Value != 0 {
		t.Errorf("disconnected flows = %d, %d; want 0", pr.Value, dn.Value)
	}
}

func TestZeroCapacityArcs(t *testing.T) {
	nw, _ := NewNetwork(3)
	_ = nw.AddArc(0, 1, 0)
	_ = nw.AddArc(1, 2, 5)
	pr, _ := nw.PushRelabel(0, 2)
	if pr.Value != 0 {
		t.Errorf("flow across zero arc = %d", pr.Value)
	}
}

func TestParallelArcs(t *testing.T) {
	nw, _ := NewNetwork(2)
	_ = nw.AddArc(0, 1, 2)
	_ = nw.AddArc(0, 1, 3)
	pr, _ := nw.PushRelabel(0, 1)
	dn, _ := nw.Dinic(0, 1)
	if pr.Value != 5 || dn.Value != 5 {
		t.Errorf("parallel arcs = %d, %d; want 5", pr.Value, dn.Value)
	}
}

func TestPushRelabelMatchesDinicRandom(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(12)
		nw, err := NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		arcs := n * 3
		for k := 0; k < arcs; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			_ = nw.AddArc(u, v, int64(r.Intn(20)))
		}
		src, sink := 0, n-1
		pr, err := nw.PushRelabel(src, sink)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := nw.Dinic(src, sink)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Value != dn.Value {
			t.Fatalf("trial %d: push-relabel %d != dinic %d", trial, pr.Value, dn.Value)
		}
		if err := nw.VerifyHeightOrientation(pr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if pr.Heights[src] != n {
			t.Fatalf("source height must stay n, got %d", pr.Heights[src])
		}
	}
}

func TestBipartiteMatchingFlow(t *testing.T) {
	// 3x3 bipartite perfect matching via unit capacities.
	// Nodes: 0 src, 1-3 left, 4-6 right, 7 sink.
	nw, _ := NewNetwork(8)
	for l := 1; l <= 3; l++ {
		_ = nw.AddArc(0, l, 1)
		_ = nw.AddArc(l+3, 7, 1)
	}
	pairs := [][2]int{{1, 4}, {1, 5}, {2, 5}, {3, 6}}
	for _, p := range pairs {
		_ = nw.AddArc(p[0], p[1], 1)
	}
	pr, _ := nw.PushRelabel(0, 7)
	if pr.Value != 3 {
		t.Errorf("matching size = %d, want 3", pr.Value)
	}
}

func TestVerifyHeightOrientationErrors(t *testing.T) {
	nw, _ := NewNetwork(2)
	_ = nw.AddArc(0, 1, 1)
	if err := nw.VerifyHeightOrientation(Result{}); err == nil {
		t.Error("missing heights should error")
	}
	if err := nw.VerifyHeightOrientation(Result{Heights: []int{0, 0}, Residual: []int64{1}}); err == nil {
		t.Error("size mismatch should error")
	}
	dn, _ := nw.Dinic(0, 1)
	if err := nw.VerifyHeightOrientation(dn); err == nil {
		t.Error("Dinic result carries no heights; should error")
	}
}

func TestVerifyFlowOnRandomInstances(t *testing.T) {
	r := stats.NewRand(9)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(10)
		nw, err := NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n*3; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = nw.AddArc(u, v, int64(r.Intn(30)))
			}
		}
		res, err := nw.PushRelabel(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.VerifyFlow(res, 0, n-1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyFlowErrors(t *testing.T) {
	nw, _ := NewNetwork(3)
	_ = nw.AddArc(0, 1, 2)
	_ = nw.AddArc(1, 2, 2)
	res, _ := nw.PushRelabel(0, 2)
	if err := nw.VerifyFlow(Result{}, 0, 2); err == nil {
		t.Error("missing residual should error")
	}
	if err := nw.VerifyFlow(res, 0, 0); err == nil {
		t.Error("src == sink should error")
	}
	// Corrupt the value: conservation check must catch it.
	bad := res
	bad.Value++
	if err := nw.VerifyFlow(bad, 0, 2); err == nil {
		t.Error("wrong value should be detected")
	}
	// Corrupt a residual: antisymmetry/capacity must catch it.
	bad2 := res
	bad2.Residual = append([]int64(nil), res.Residual...)
	bad2.Residual[0] += 5
	if err := nw.VerifyFlow(bad2, 0, 2); err == nil {
		t.Error("corrupted residual should be detected")
	}
}
