package sim

import (
	mrand "math/rand"
	"math/rand/v2"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/hypercube"
)

// The builtin scenarios and the self-healing supervisors in internal/heal
// must agree on the topology a seed denotes: a violation found by `structura
// chaos -scenario mis -seed 7` has to reproduce under `structura heal
// -engine mis -seed 7` on the same graph. These builders are that shared
// vocabulary; each is a pure function of its seed.

const (
	misNodes     = 64
	misEdgeProb  = 0.08
	ringNodes    = 16
	ringChords   = 3
	distvecNodes = 32
	cubeDim      = 4
	cubeFaults   = 2
)

// MISGraph returns the seed's sparse Erdős–Rényi support used by the "mis"
// scenario (64 nodes, edge probability 0.08).
func MISGraph(seed uint64) *graph.Graph {
	// gen takes a math/rand (v1) source; seed it deterministically.
	return gen.SparseErdosRenyi(mrand.New(mrand.NewSource(int64(seed))), misNodes, misEdgeProb)
}

// ChordalRing builds a ring of n nodes plus `chords` seed-drawn chords — a
// connected support with alternative routes, so single link failures are
// survivable and partitions need coordinated cuts.
func ChordalRing(n, chords int, seed uint64) *graph.Graph {
	g := gen.Ring(n)
	rng := rand.New(rand.NewPCG(seed, 0x5851F42D4C957F2D))
	for i := 0; i < chords; i++ {
		for try := 0; try < 32; try++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			_ = g.AddEdge(u, v)
			break
		}
	}
	return g
}

// ReversalRing returns the seed's chordal ring used by the reversal
// scenarios (16 nodes, 3 chords).
func ReversalRing(seed uint64) *graph.Graph {
	return ChordalRing(ringNodes, ringChords, seed)
}

// DistVecRing returns the seed's chordal ring used by the "distvec"
// scenario (32 nodes, 3 chords).
func DistVecRing(seed uint64) *graph.Graph {
	return ChordalRing(distvecNodes, ringChords, seed)
}

// CDSGrid returns the 6×8 grid the "cds" scenario labels.
func CDSGrid() *graph.Graph { return gen.Grid(6, 8) }

// FaultyCube returns the seed's 4-D hypercube with two seed-drawn faulty
// nodes, as used by the "hypercube" scenario.
func FaultyCube(seed uint64) *hypercube.Cube {
	rng := rand.New(rand.NewPCG(seed, 0x2545F4914F6CDD1D))
	faultSet := make(map[int]bool, cubeFaults)
	faults := make([]int, 0, cubeFaults)
	for len(faults) < cubeFaults {
		f := rng.IntN(1 << cubeDim)
		if !faultSet[f] {
			faultSet[f] = true
			faults = append(faults, f)
		}
	}
	cube, err := hypercube.New(cubeDim, faults)
	if err != nil {
		panic(err) // unreachable: cubeDim and the drawn faults are in range
	}
	return cube
}
