package sim

import (
	"fmt"
	stdruntime "runtime"
	"sort"
	"strings"
	"testing"
)

// chaosSchedule exercises every fault class at once.
func chaosSchedule() Schedule {
	return Schedule{
		Horizon:     10,
		MsgLoss:     0.05,
		CrashProb:   0.02,
		Downtime:    2,
		SkewProb:    0.02,
		MaxSkew:     2,
		ChurnAdd:    1,
		ChurnRemove: 1,
		ChurnEvery:  3,
	}
}

// fingerprint canonicalizes everything observable about a Result except
// wall-clock times. Two runs of the same (scenario, seed, schedule) must
// produce identical fingerprints — across processes and worker counts.
func fingerprint(r *Result) string {
	var b strings.Builder
	w := r.World
	fmt.Fprintf(&b, "stats rounds=%d msgs=%d stable=%v\n", w.Stats.Rounds, w.Stats.Messages, w.Stats.Stable)
	for _, rs := range w.Stats.History {
		fmt.Fprintf(&b, "h %d %d %d\n", rs.Round, rs.Changed, rs.Messages)
	}
	fmt.Fprintf(&b, "lastFault=%d recovery=%d quiesced=%v\n", r.LastFault, r.RecoveryRounds, r.Quiesced)
	for _, e := range w.Trace {
		fmt.Fprintf(&b, "t %s\n", e)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "v %s\n", v)
	}
	fmt.Fprintf(&b, "edges %v\n", w.Graph.Edges())
	if w.MIS != nil {
		fmt.Fprintf(&b, "mis %v %v\n", w.MIS.Colors, w.MIS.Stable)
	}
	if w.CDS != nil {
		fmt.Fprintf(&b, "cds %v\n", w.CDS.Members)
	}
	if w.Rev != nil {
		keys := make([]int, 0, len(w.Rev.PerNode))
		for k := range w.Rev.PerNode {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(&b, "rev sinks=%v fails=%d total=%d stable=%v per=", w.Rev.Sinks, w.Rev.Fails, w.Rev.Total, w.Rev.Stable)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d ", k, w.Rev.PerNode[k])
		}
		b.WriteByte('\n')
	}
	if w.Dist != nil {
		fmt.Fprintf(&b, "dist %v %v\n", w.Dist.Dist, w.Dist.Stable)
	}
	if w.Cube != nil {
		fmt.Fprintf(&b, "cube %v %v %v %v\n", w.Cube.Faulty, w.Cube.Levels, w.Cube.MinLevels, w.Cube.Peaks)
	}
	return b.String()
}

// TestExploreDeterminism is the tentpole acceptance check: the same
// (scenario, seed, schedule) triple replays bit-identically across repeated
// runs AND across kernel worker counts (sequential vs GOMAXPROCS shards).
func TestExploreDeterminism(t *testing.T) {
	sch := chaosSchedule()
	for _, sc := range BuiltinScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first, err := Explore(sc.Name, 42, sch)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			second, err := Explore(sc.Name, 42, sch)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if a, b := fingerprint(first), fingerprint(second); a != b {
				t.Fatalf("two identical Explore calls diverged:\n--- run1\n%s\n--- run2\n%s", a, b)
			}
			seq, err := ExploreWith(sc.Name, 42, sch, 1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			par, err := ExploreWith(sc.Name, 42, sch, stdruntime.GOMAXPROCS(0))
			if err != nil {
				t.Fatalf("workers=max: %v", err)
			}
			if a, b := fingerprint(seq), fingerprint(par); a != b {
				t.Fatalf("sequential vs parallel kernel diverged:\n--- seq\n%s\n--- par\n%s", a, b)
			}
			if a, b := fingerprint(first), fingerprint(seq); a != b {
				t.Fatalf("auto vs pinned worker count diverged:\n--- auto\n%s\n--- seq\n%s", a, b)
			}
		})
	}
}

// TestExploreSeedSensitivity guards against a pinned RNG: different seeds
// must produce different fault draws somewhere across the scenario set.
func TestExploreSeedSensitivity(t *testing.T) {
	sch := chaosSchedule()
	differ := false
	for _, sc := range BuiltinScenarios() {
		a, err := Explore(sc.Name, 1, sch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Explore(sc.Name, 2, sch)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a) != fingerprint(b) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical runs for every scenario")
	}
}

func TestExploreUnknownScenario(t *testing.T) {
	if _, err := Explore("no-such-scenario", 1, Schedule{}); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("expected an error from ScenarioByName")
	}
}

func TestExploreZeroScheduleQuiesces(t *testing.T) {
	for _, sc := range BuiltinScenarios() {
		r, err := Explore(sc.Name, 7, Schedule{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !r.Quiesced {
			t.Errorf("%s: fault-free run did not quiesce", sc.Name)
		}
		if len(r.Violations) != 0 {
			t.Errorf("%s: fault-free run violated invariants: %v", sc.Name, r.Violations)
		}
		if r.LastFault != 0 || r.RecoveryRounds != 0 {
			t.Errorf("%s: fault-free run reported faults (last=%d recovery=%d)",
				sc.Name, r.LastFault, r.RecoveryRounds)
		}
	}
}

// partitionEvents cuts an adjacent non-destination pair (u,v) out of g at
// the given round: every incident edge except (u,v) itself is removed,
// leaving a two-node component with one link and no destination.
func partitionEvents(t *testing.T, r *Result, round int) []Event {
	t.Helper()
	g := r.World.Graph
	pu, pv := -1, -1
	for _, e := range g.Edges() {
		if e.From != 0 && e.To != 0 {
			pu, pv = e.From, e.To
			break
		}
	}
	if pu < 0 {
		t.Fatal("no non-destination edge to cut")
	}
	var cut []Event
	for _, x := range []int{pu, pv} {
		g.EachNeighbor(x, func(u int, _ float64) {
			if (x == pu && u == pv) || (x == pv && u == pu) {
				return
			}
			cut = append(cut, Event{Round: round, Op: OpRemoveEdge, U: x, V: u})
		})
	}
	return cut
}

// TestMinimize checks the shrinker: a partition cut buried in background
// churn reduces to exactly the cut edges, and the minimized schedule is a
// fully concrete reproducer (no probabilistic faults left).
func TestMinimize(t *testing.T) {
	base, err := Explore("reversal-full", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	cut := partitionEvents(t, base, 1)
	sch := Schedule{Horizon: 6, ChurnAdd: 1, ChurnEvery: 2, Events: cut}
	min, res, err := Minimize("reversal-full", 7, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("minimized run lost the violation")
	}
	if len(min.Events) != len(cut) {
		t.Fatalf("expected the %d-edge cut to survive minimization, got %d events: %v",
			len(cut), len(min.Events), min.Events)
	}
	if min.MsgLoss != 0 || min.CrashProb != 0 || min.SkewProb != 0 || min.ChurnAdd != 0 || min.ChurnRemove != 0 {
		t.Fatalf("minimized schedule still has probabilistic faults: %+v", min)
	}
	for _, e := range min.Events {
		if e.Op != OpRemoveEdge {
			t.Fatalf("unexpected surviving event %s", e)
		}
	}
	// The reproducer replays deterministically.
	again, err := Explore("reversal-full", 7, min)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(again) != fingerprint(res) {
		t.Fatal("minimized schedule did not replay identically")
	}
}

func TestMinimizeRejectsPassingRun(t *testing.T) {
	if _, _, err := Minimize("mis", 7, Schedule{}); err == nil {
		t.Fatal("expected an error when minimizing a run with no violations")
	}
}
