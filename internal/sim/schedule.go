// Package sim is the deterministic fault-injection and invariant-checking
// harness for the distributed kernel: the correctness backbone the paper's
// self-stabilization claims are validated against.
//
// The paper's labeling schemes (MIS/CDS marking, link reversal,
// distance-vector labels, hypercube safety levels) are claimed to be
// localized and self-stabilizing under churn; Casteigts et al. argue such
// claims are only meaningful relative to an explicit adversarial dynamics
// model. This package supplies that model: a Schedule describes a fault
// timeline (message loss, node crash/restart, edge churn, bounded
// asynchrony), a Perturber replays it bit-for-bit from a PCG seed through
// the runtime kernel's WithPerturber hook, Scenario couples a topology with
// an algorithm, and the Invariant registry checks the structural properties
// each algorithm promises — naming the offending node or edge when one is
// violated. Explore drives a full run; Minimize shrinks a failing schedule
// to a minimal concrete event list.
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Event operation kinds. Every probabilistic fault the Perturber draws is
// materialized as one of these, so any run can be replayed — and shrunk —
// from a concrete event list alone.
const (
	OpAddEdge    = "add-edge"    // add support edge (U,V)
	OpRemoveEdge = "remove-edge" // remove support edge (U,V)
	OpCrash      = "crash"       // node U down for For rounds, then restarts with fresh state
	OpSkip       = "skip"        // node U skips its step for For rounds (bounded asynchrony)
	OpDrop       = "drop"        // the single message U -> V this round is lost
)

// Event is one concrete fault, pinned to a round.
type Event struct {
	Round int    `json:"round"`
	Op    string `json:"op"`
	U     int    `json:"u"`
	V     int    `json:"v,omitempty"`
	For   int    `json:"for,omitempty"` // crash/skip duration in rounds (default 1)
}

func (e Event) String() string {
	switch e.Op {
	case OpCrash, OpSkip:
		d := e.For
		if d <= 0 {
			d = 1
		}
		return fmt.Sprintf("r%d %s node %d for %d", e.Round, e.Op, e.U, d)
	case OpDrop:
		return fmt.Sprintf("r%d drop msg %d->%d", e.Round, e.U, e.V)
	default:
		return fmt.Sprintf("r%d %s (%d,%d)", e.Round, e.Op, e.U, e.V)
	}
}

// Schedule is a fault timeline: probabilistic background faults active
// during rounds 1..Horizon, plus scripted Events at exact rounds. The zero
// value perturbs nothing. Schedules are JSON-serializable; the seed-replay
// corpus under testdata/ stores them verbatim.
type Schedule struct {
	// Horizon is the adversary's window: probabilistic faults occur only in
	// rounds 1..Horizon, and the kernel will not declare quiescence before
	// the window (plus any pending crash recoveries) has passed.
	Horizon int `json:"horizon"`

	// Budget caps the kernel rounds for the whole run; 0 means
	// Horizon + 4n + 8, enough for every labeling scheme here to
	// restabilize after the window closes.
	Budget int `json:"budget,omitempty"`

	// MsgLoss is the per-message Bernoulli loss probability (each directed
	// state transfer, each round, independently).
	MsgLoss float64 `json:"msg_loss,omitempty"`

	// CrashProb is the per-node, per-round crash probability; a crashed
	// node is silent and frozen for Downtime rounds (min 1), then restarts
	// with a fresh init state.
	CrashProb float64 `json:"crash_prob,omitempty"`
	Downtime  int     `json:"downtime,omitempty"`

	// SkewProb is the per-node, per-round probability of falling behind:
	// the node skips 1..MaxSkew consecutive rounds (bounded asynchrony).
	SkewProb float64 `json:"skew_prob,omitempty"`
	MaxSkew  int     `json:"max_skew,omitempty"`

	// Edge churn: every ChurnEvery rounds (default 1) within the horizon,
	// ChurnRemove random existing edges are removed and ChurnAdd random
	// absent edges are added to the live support graph.
	ChurnAdd    int `json:"churn_add,omitempty"`
	ChurnRemove int `json:"churn_remove,omitempty"`
	ChurnEvery  int `json:"churn_every,omitempty"`

	// Events are scripted faults applied at their exact round, before the
	// round's probabilistic draws. A schedule of Events with every
	// probability zero is a fully concrete, replayable fault trace.
	Events []Event `json:"events,omitempty"`
}

// Validate checks every field against its documented domain, naming the
// offending JSON field so a hand-written schedule fails with an actionable
// message instead of a silent misbehavior (a negative probability never
// fires; a zero-round event never applies).
func (s Schedule) Validate() error {
	if s.Horizon < 0 {
		return fmt.Errorf("sim: schedule field %q must be >= 0, got %d", "horizon", s.Horizon)
	}
	if s.Budget < 0 {
		return fmt.Errorf("sim: schedule field %q must be >= 0, got %d", "budget", s.Budget)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"msg_loss", s.MsgLoss},
		{"crash_prob", s.CrashProb},
		{"skew_prob", s.SkewProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("sim: schedule field %q must be a probability in [0,1], got %v", p.name, p.v)
		}
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"downtime", s.Downtime},
		{"max_skew", s.MaxSkew},
		{"churn_add", s.ChurnAdd},
		{"churn_remove", s.ChurnRemove},
		{"churn_every", s.ChurnEvery},
	} {
		if c.v < 0 {
			return fmt.Errorf("sim: schedule field %q must be >= 0, got %d", c.name, c.v)
		}
	}
	for i, e := range s.Events {
		prefix := fmt.Sprintf("sim: schedule field \"events[%d]\"", i)
		switch e.Op {
		case OpAddEdge, OpRemoveEdge, OpCrash, OpSkip, OpDrop:
		case "":
			return fmt.Errorf("%s: missing %q", prefix, "op")
		default:
			return fmt.Errorf("%s: unknown %q %q (want %s, %s, %s, %s or %s)",
				prefix, "op", e.Op, OpAddEdge, OpRemoveEdge, OpCrash, OpSkip, OpDrop)
		}
		if e.Round < 1 {
			return fmt.Errorf("%s: %q must be >= 1, got %d", prefix, "round", e.Round)
		}
		if e.For < 0 {
			return fmt.Errorf("%s: %q must be >= 0, got %d", prefix, "for", e.For)
		}
	}
	return nil
}

// DecodeSchedule parses a schedule document strictly: unknown fields are
// rejected (catching typos like "churn_ad") and the decoded schedule is
// validated field by field.
func DecodeSchedule(raw []byte) (Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var sch Schedule
	if err := dec.Decode(&sch); err != nil {
		return Schedule{}, fmt.Errorf("sim: schedule does not parse: %w", err)
	}
	if err := sch.Validate(); err != nil {
		return Schedule{}, err
	}
	return sch, nil
}

// maxEventRound returns the latest scripted round (0 if none).
func (s Schedule) maxEventRound() int {
	m := 0
	for _, e := range s.Events {
		r := e.Round
		if e.Op == OpCrash || e.Op == OpSkip {
			d := e.For
			if d <= 0 {
				d = 1
			}
			r += d // the recovery tail counts as adversary activity
		}
		if r > m {
			m = r
		}
	}
	return m
}

// budget resolves the round budget for a run on an n-node graph.
func (s Schedule) budget(n int) int {
	if s.Budget > 0 {
		return s.Budget
	}
	return s.Horizon + 4*n + 8
}
