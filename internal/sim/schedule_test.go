package sim

import (
	"strings"
	"testing"
)

// TestScheduleValidateNamesField pins the contract that a hand-written
// schedule fails with the offending JSON field named, not a silent
// misbehavior.
func TestScheduleValidateNamesField(t *testing.T) {
	cases := []struct {
		field string
		sch   Schedule
	}{
		{"horizon", Schedule{Horizon: -1}},
		{"budget", Schedule{Budget: -2}},
		{"msg_loss", Schedule{MsgLoss: 1.5}},
		{"crash_prob", Schedule{CrashProb: -0.1}},
		{"skew_prob", Schedule{SkewProb: 2}},
		{"downtime", Schedule{Downtime: -1}},
		{"max_skew", Schedule{MaxSkew: -1}},
		{"churn_add", Schedule{ChurnAdd: -1}},
		{"churn_remove", Schedule{ChurnRemove: -3}},
		{"churn_every", Schedule{ChurnEvery: -1}},
		{"events[0]", Schedule{Events: []Event{{Round: 1, Op: "explode", U: 0}}}},
		{"events[1]", Schedule{Events: []Event{
			{Round: 1, Op: OpDrop, U: 0, V: 1},
			{Round: 2, U: 0}, // missing op
		}}},
		{"round", Schedule{Events: []Event{{Round: 0, Op: OpCrash, U: 1}}}},
		{"for", Schedule{Events: []Event{{Round: 2, Op: OpSkip, U: 1, For: -1}}}},
	}
	for _, c := range cases {
		err := c.sch.Validate()
		if err == nil {
			t.Errorf("schedule with bad %s validated", c.field)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("error %q does not name field %q", err, c.field)
		}
	}
	good := Schedule{
		Horizon: 8, MsgLoss: 0.2, CrashProb: 0.05, Downtime: 2,
		SkewProb: 0.1, MaxSkew: 3, ChurnAdd: 1, ChurnRemove: 1, ChurnEvery: 2,
		Events: []Event{
			{Round: 1, Op: OpRemoveEdge, U: 0, V: 1},
			{Round: 3, Op: OpCrash, U: 4, For: 2},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestDecodeScheduleStrict(t *testing.T) {
	sch, err := DecodeSchedule([]byte(`{"horizon": 5, "churn_add": 1, "events": [{"round": 2, "op": "remove-edge", "u": 0, "v": 1}]}`))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if sch.Horizon != 5 || sch.ChurnAdd != 1 || len(sch.Events) != 1 {
		t.Errorf("decoded schedule = %+v", sch)
	}
	// Typo'd field names must be rejected, not silently ignored.
	if _, err := DecodeSchedule([]byte(`{"horizon": 5, "churn_ad": 1}`)); err == nil || !strings.Contains(err.Error(), "churn_ad") {
		t.Errorf("unknown field: err = %v, want a churn_ad complaint", err)
	}
	// Validation runs on the decoded document.
	if _, err := DecodeSchedule([]byte(`{"msg_loss": 7}`)); err == nil || !strings.Contains(err.Error(), "msg_loss") {
		t.Errorf("out-of-range field: err = %v, want a msg_loss complaint", err)
	}
	if _, err := DecodeSchedule([]byte(`{"horizon": `)); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("truncated document: err = %v", err)
	}
}

// TestMinimizeDivergenceDetected forces the ddmin walk onto a different
// failure than the one being debugged: invariant wide fires on the full
// two-event trace, narrow only on a one-event trace, so shrinking "keeps
// failing" while abandoning the original violation. Minimize must refuse to
// hand out the reproducer and say which invariants diverged.
func TestMinimizeDivergenceDetected(t *testing.T) {
	wide := Invariant{
		Name: "test-wide",
		Desc: "fires when two or more faults applied",
		Check: func(w *World) []Violation {
			if len(w.Trace) >= 2 {
				return []Violation{{Invariant: "test-wide", Node: 0, Edge: [2]int{-1, -1}, Detail: "two faults"}}
			}
			return nil
		},
	}
	narrow := Invariant{
		Name: "test-narrow",
		Desc: "fires when exactly one fault applied",
		Check: func(w *World) []Violation {
			if len(w.Trace) == 1 {
				return []Violation{{Invariant: "test-narrow", Node: 0, Edge: [2]int{-1, -1}, Detail: "one fault"}}
			}
			return nil
		},
	}
	sch := Schedule{Events: []Event{
		{Round: 1, Op: OpRemoveEdge, U: 0, V: 1},
		{Round: 1, Op: OpRemoveEdge, U: 2, V: 3},
	}}
	_, _, err := Minimize("reversal-full", 7, sch, wide, narrow)
	if err == nil {
		t.Fatal("divergent minimization handed out a reproducer")
	}
	for _, want := range []string{"diverged", "test-narrow", "test-wide"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
