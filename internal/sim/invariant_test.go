package sim

import (
	"testing"

	"structura/internal/labeling"
)

// Every registered invariant gets a test that injects a fault known to
// violate it and asserts the checker fires, naming the offending node or
// edge. Targets are derived from a fault-free baseline run of the same
// (scenario, seed), so the injections stay valid if topologies change.

func named(violations []Violation, invariant string) []Violation {
	var out []Violation
	for _, v := range violations {
		if v.Invariant == invariant {
			out = append(out, v)
		}
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"cds-connectivity",
		"cds-domination",
		"distvec-bfs-agreement",
		"hypercube-level-consistent",
		"hypercube-level-monotone",
		"mis-independence",
		"mis-maximality",
		"reversal-count-bound",
		"reversal-destination-oriented",
	}
	invs := Invariants()
	if len(invs) != len(want) {
		t.Fatalf("expected %d registered invariants, got %d", len(want), len(invs))
	}
	for i, inv := range invs {
		if inv.Name != want[i] {
			t.Fatalf("invariant %d: got %q, want %q", i, inv.Name, want[i])
		}
		if _, err := Lookup(inv.Name); err != nil {
			t.Fatalf("Lookup(%q): %v", inv.Name, err)
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup of unknown invariant should fail")
	}
}

// TestInjectMISIndependence adds an edge between two converged Black nodes:
// Black is terminal in the three-color process, so both endpoints stay Black
// and the independence checker must flag exactly that edge.
func TestInjectMISIndependence(t *testing.T) {
	base, err := Explore("mis", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	var blacks []int
	for v, c := range base.World.MIS.Colors {
		if c == labeling.Black {
			blacks = append(blacks, v)
		}
	}
	if len(blacks) < 2 {
		t.Fatalf("baseline MIS too small: %v", blacks)
	}
	u, v := blacks[0], blacks[1]
	ev := Event{Round: base.World.Stats.Rounds + 5, Op: OpAddEdge, U: u, V: v}
	r, err := Explore("mis", 7, Schedule{Events: []Event{ev}})
	if err != nil {
		t.Fatal(err)
	}
	hits := named(r.Violations, "mis-independence")
	if len(hits) == 0 {
		t.Fatalf("mis-independence did not fire; violations: %v", r.Violations)
	}
	got := hits[0].Edge
	if !(got == [2]int{u, v} || got == [2]int{v, u}) {
		t.Fatalf("violation names edge %v, injected (%d,%d)", got, u, v)
	}
}

// TestInjectMISMaximality removes a converged Gray node's only edges to
// Black neighbors: Gray is terminal too, so the node is left undominated.
func TestInjectMISMaximality(t *testing.T) {
	base, err := Explore("mis", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	colors := base.World.MIS.Colors
	g := base.World.Graph
	round := base.World.Stats.Rounds + 5
	gray := -1
	var cut []Event
	for v, c := range colors {
		if c != labeling.Gray {
			continue
		}
		cut = cut[:0]
		g.EachNeighbor(v, func(u int, _ float64) {
			if colors[u] == labeling.Black {
				cut = append(cut, Event{Round: round, Op: OpRemoveEdge, U: v, V: u})
			}
		})
		if len(cut) == 1 { // a gray node held by a single Black edge
			gray = v
			break
		}
	}
	if gray < 0 {
		t.Fatal("no gray node with exactly one Black neighbor in the baseline")
	}
	r, err := Explore("mis", 7, Schedule{Events: append([]Event(nil), cut...)})
	if err != nil {
		t.Fatal(err)
	}
	hits := named(r.Violations, "mis-maximality")
	if len(hits) == 0 {
		t.Fatalf("mis-maximality did not fire; violations: %v", r.Violations)
	}
	found := false
	for _, h := range hits {
		if h.Node == gray {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the stranded gray node %d", hits, gray)
	}
}

// TestInjectCDSDomination cuts a non-member away from all its CDS neighbors.
func TestInjectCDSDomination(t *testing.T) {
	base, err := Explore("cds", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	in := labeling.SetOf(base.World.CDS.Members)
	g := base.World.Graph
	victim := -1
	var cut []Event
	for v := 0; v < g.N() && victim < 0; v++ {
		if in[v] {
			continue
		}
		cut = cut[:0]
		g.EachNeighbor(v, func(u int, _ float64) {
			if in[u] {
				cut = append(cut, Event{Round: 1, Op: OpRemoveEdge, U: v, V: u})
			}
		})
		if len(cut) > 0 {
			victim = v
		}
	}
	if victim < 0 {
		t.Fatal("every node is in the CDS; nothing to strand")
	}
	r, err := Explore("cds", 7, Schedule{Events: append([]Event(nil), cut...)})
	if err != nil {
		t.Fatal(err)
	}
	hits := named(r.Violations, "cds-domination")
	if len(hits) != 1 || hits[0].Node != victim {
		t.Fatalf("expected cds-domination naming node %d, got %v (all: %v)", victim, hits, r.Violations)
	}
}

// TestInjectCDSConnectivity isolates one CDS member entirely, detaching it
// from the backbone component.
func TestInjectCDSConnectivity(t *testing.T) {
	base, err := Explore("cds", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	members := base.World.CDS.Members
	if len(members) < 2 {
		t.Fatalf("CDS too small to split: %v", members)
	}
	m := members[1] // not the BFS root the checker starts from
	var cut []Event
	base.World.Graph.EachNeighbor(m, func(u int, _ float64) {
		cut = append(cut, Event{Round: 1, Op: OpRemoveEdge, U: m, V: u})
	})
	r, err := Explore("cds", 7, Schedule{Events: cut})
	if err != nil {
		t.Fatal(err)
	}
	hits := named(r.Violations, "cds-connectivity")
	if len(hits) == 0 {
		t.Fatalf("cds-connectivity did not fire; violations: %v", r.Violations)
	}
	found := false
	for _, h := range hits {
		if h.Node == m {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the detached member %d", hits, m)
	}
}

// TestInjectReversalPartition cuts a two-node component off the chordal
// ring for each reversal variant: the detached pair reverses against each
// other forever, so the orientation invariant AND the work bound must both
// fire, and every named node must lie in the detached pair.
func TestInjectReversalPartition(t *testing.T) {
	for _, scn := range []string{"reversal-full", "reversal-partial", "reversal-binary"} {
		scn := scn
		t.Run(scn, func(t *testing.T) {
			base, err := Explore(scn, 7, Schedule{})
			if err != nil {
				t.Fatal(err)
			}
			cut := partitionEvents(t, base, 1)
			pair := map[int]bool{cut[0].U: true}
			for _, e := range cut {
				pair[e.U] = true
			}
			r, err := Explore(scn, 7, Schedule{Events: cut})
			if err != nil {
				t.Fatal(err)
			}
			if r.Quiesced {
				t.Fatal("partitioned reversal run claims to have stabilized")
			}
			oriented := named(r.Violations, "reversal-destination-oriented")
			bound := named(r.Violations, "reversal-count-bound")
			if len(oriented) == 0 {
				t.Fatalf("reversal-destination-oriented did not fire; violations: %v", r.Violations)
			}
			if len(bound) == 0 {
				t.Fatalf("reversal-count-bound did not fire; violations: %v", r.Violations)
			}
			for _, h := range append(oriented, bound...) {
				if h.Node >= 0 && !pair[h.Node] && h.Node != 0 {
					t.Errorf("violation %v names node outside the detached pair %v", h, pair)
				}
			}
		})
	}
}

// TestInjectDistVecCountToInfinity partitions the converged distance-vector
// run: the detached pair bounces labels off each other (count-to-infinity),
// never restabilizes, and ends with finite labels for an unreachable
// destination.
func TestInjectDistVecCountToInfinity(t *testing.T) {
	base, err := Explore("distvec", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	cut := partitionEvents(t, base, base.World.Stats.Rounds+2)
	pair := map[int]bool{}
	for _, e := range cut {
		pair[e.U] = true
	}
	r, err := Explore("distvec", 7, Schedule{Events: cut})
	if err != nil {
		t.Fatal(err)
	}
	if r.Quiesced {
		t.Fatal("count-to-infinity run claims to have restabilized")
	}
	hits := named(r.Violations, "distvec-bfs-agreement")
	if len(hits) != len(pair) {
		t.Fatalf("expected %d distvec-bfs-agreement violations (one per detached node), got %v", len(pair), hits)
	}
	for _, h := range hits {
		if !pair[h.Node] {
			t.Errorf("violation %v names a node outside the detached pair %v", h, pair)
		}
	}
}

// TestInjectCubeLevelRise removes the edge binding a low-safety-level node
// to a faulty neighbor after the levels converge: the node's recomputed
// level jumps up, breaking the monotone-decrease contract the safety-level
// scheme relies on.
func TestInjectCubeLevelRise(t *testing.T) {
	const seed = 1
	base, err := Explore("hypercube", seed, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	cw := base.World.Cube
	u, f := -1, -1
	for v := 0; v < len(cw.Levels) && u < 0; v++ {
		if cw.Faulty[v] || cw.Levels[v] >= cw.Dim {
			continue
		}
		base.World.Graph.EachNeighbor(v, func(w int, _ float64) {
			if u < 0 && cw.Faulty[w] {
				u, f = v, w
			}
		})
	}
	if u < 0 {
		t.Fatalf("seed %d: no low-level node with a faulty neighbor (levels %v, faulty %v)",
			seed, cw.Levels, cw.Faulty)
	}
	ev := Event{Round: base.World.Stats.Rounds + 2, Op: OpRemoveEdge, U: u, V: f}
	r, err := Explore("hypercube", seed, Schedule{Events: []Event{ev}})
	if err != nil {
		t.Fatal(err)
	}
	hits := named(r.Violations, "hypercube-level-monotone")
	if len(hits) == 0 {
		t.Fatalf("hypercube-level-monotone did not fire; violations: %v", r.Violations)
	}
	found := false
	for _, h := range hits {
		if h.Node == u {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the destabilized node %d", hits, u)
	}
}

// TestCheckersIgnoreForeignWorlds: every checker returns nil for a World
// missing its section, so one registry can judge every scenario.
func TestCheckersIgnoreForeignWorlds(t *testing.T) {
	r, err := Explore("mis", 7, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range Invariants() {
		if inv.Name == "mis-independence" || inv.Name == "mis-maximality" {
			continue
		}
		if v := inv.Check(r.World); v != nil {
			t.Errorf("%s reported violations on an MIS world: %v", inv.Name, v)
		}
	}
}
