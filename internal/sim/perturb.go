package sim

import (
	"math/rand/v2"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used to
// derive pure per-round, per-edge drop decisions. Decisions made this way
// are independent of evaluation order, which is what keeps perturbed runs
// bit-identical across worker counts.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// dropChance converts a hash to a uniform float in [0,1).
func dropChance(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Perturber materializes a Schedule against a live support graph and feeds
// it to the runtime kernel through the WithPerturber hook. All randomness
// comes from one PCG stream drawn in a fixed order by the coordinating
// goroutine, plus pure per-edge hashes for message loss, so a (seed,
// schedule) pair replays byte-for-byte — including across different worker
// counts. A Perturber is single-run: build a fresh one per Explore.
type Perturber struct {
	sch  Schedule
	seed uint64
	rng  *rand.Rand
	live *graph.Graph
	n    int

	downUntil []int // v is down through round downUntil[v]; -1 = up
	skipUntil []int // v skips its step through round skipUntil[v]; -1 = none
	byRound   map[int][]Event
	maxEvent  int

	record    bool
	trace     []Event
	lastFault int
}

// NewPerturber builds the fault injector for one run over g (cloned; the
// caller's graph is never mutated).
func NewPerturber(g *graph.Graph, seed uint64, sch Schedule) *Perturber {
	n := g.N()
	p := &Perturber{
		sch:       sch,
		seed:      seed,
		rng:       rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15)),
		live:      g.Clone(),
		n:         n,
		downUntil: make([]int, n),
		skipUntil: make([]int, n),
		byRound:   make(map[int][]Event),
		maxEvent:  sch.maxEventRound(),
	}
	for v := 0; v < n; v++ {
		p.downUntil[v] = -1
		p.skipUntil[v] = -1
	}
	for _, e := range sch.Events {
		p.byRound[e.Round] = append(p.byRound[e.Round], e)
	}
	return p
}

// EnableTrace makes the perturber record every concrete fault it applies
// (scripted and drawn, including enumerated message drops), so the run can
// be replayed — and minimized — from Trace() alone.
func (p *Perturber) EnableTrace() { p.record = true }

// Trace returns the concrete events applied so far.
func (p *Perturber) Trace() []Event { return append([]Event(nil), p.trace...) }

// FinalGraph returns a copy of the live (churned) support graph — the
// topology invariants must be checked against.
func (p *Perturber) FinalGraph() *graph.Graph { return p.live.Clone() }

// LastFaultRound returns the last round at which any fault applied (0 if
// none did), the anchor for rounds-to-restabilize measurements.
func (p *Perturber) LastFaultRound() int { return p.lastFault }

// BeforeRound implements runtime.Perturber: scripted events first, then the
// round's probabilistic draws (churn, crashes, skew) in fixed node order.
func (p *Perturber) BeforeRound(round int, g *graph.CSR) runtime.Perturbation {
	topoChanged := false
	var drops map[[2]int]bool
	faulted := false

	apply := func(e Event) {
		switch e.Op {
		case OpAddEdge:
			if e.U == e.V || p.live.HasEdge(e.U, e.V) {
				return
			}
			if p.live.AddEdge(e.U, e.V) != nil {
				return
			}
			topoChanged = true
		case OpRemoveEdge:
			if !p.live.RemoveEdge(e.U, e.V) {
				return
			}
			topoChanged = true
		case OpCrash:
			if e.U < 0 || e.U >= p.n {
				return
			}
			d := e.For
			if d <= 0 {
				d = 1
			}
			p.downUntil[e.U] = round + d - 1
		case OpSkip:
			if e.U < 0 || e.U >= p.n {
				return
			}
			d := e.For
			if d <= 0 {
				d = 1
			}
			p.skipUntil[e.U] = round + d - 1
		case OpDrop:
			if drops == nil {
				drops = make(map[[2]int]bool)
			}
			drops[[2]int{e.U, e.V}] = true
		default:
			return
		}
		faulted = true
		if p.record {
			p.trace = append(p.trace, Event{Round: round, Op: e.Op, U: e.U, V: e.V, For: e.For})
		}
	}

	for _, e := range p.byRound[round] {
		apply(e)
	}
	if round <= p.sch.Horizon {
		every := p.sch.ChurnEvery
		if every <= 0 {
			every = 1
		}
		if (p.sch.ChurnRemove > 0 || p.sch.ChurnAdd > 0) && round%every == 0 {
			for i := 0; i < p.sch.ChurnRemove; i++ {
				edges := p.live.Edges()
				if len(edges) == 0 {
					break
				}
				e := edges[p.rng.IntN(len(edges))]
				apply(Event{Op: OpRemoveEdge, U: e.From, V: e.To})
			}
			for i := 0; i < p.sch.ChurnAdd; i++ {
				for try := 0; try < 16; try++ {
					u, v := p.rng.IntN(p.n), p.rng.IntN(p.n)
					if u == v || p.live.HasEdge(u, v) {
						continue
					}
					apply(Event{Op: OpAddEdge, U: u, V: v})
					break
				}
			}
		}
		if p.sch.CrashProb > 0 {
			down := p.sch.Downtime
			if down <= 0 {
				down = 1
			}
			for v := 0; v < p.n; v++ {
				if p.downUntil[v] >= round {
					continue
				}
				if p.rng.Float64() < p.sch.CrashProb {
					apply(Event{Op: OpCrash, U: v, For: down})
				}
			}
		}
		if p.sch.SkewProb > 0 {
			maxSkew := p.sch.MaxSkew
			if maxSkew <= 0 {
				maxSkew = 1
			}
			for v := 0; v < p.n; v++ {
				if p.downUntil[v] >= round || p.skipUntil[v] >= round {
					continue
				}
				if p.rng.Float64() < p.sch.SkewProb {
					apply(Event{Op: OpSkip, U: v, For: 1 + p.rng.IntN(maxSkew)})
				}
			}
		}
	}

	var per runtime.Perturbation
	if topoChanged {
		per.Topology = p.live.Freeze()
	}
	for v := 0; v < p.n; v++ {
		if p.downUntil[v] >= 0 && p.downUntil[v] == round-1 {
			// The node served its downtime: restart with amnesia.
			if per.Restart == nil {
				per.Restart = make([]bool, p.n)
			}
			per.Restart[v] = true
			p.downUntil[v] = -1
			faulted = true
		}
		if p.downUntil[v] >= round {
			if per.Inactive == nil {
				per.Inactive = make([]bool, p.n)
			}
			if per.Silence == nil {
				per.Silence = make([]bool, p.n)
			}
			per.Inactive[v] = true
			per.Silence[v] = true
			faulted = true
		} else if p.skipUntil[v] >= round {
			if per.Inactive == nil {
				per.Inactive = make([]bool, p.n)
			}
			per.Inactive[v] = true
			faulted = true
		}
	}

	loss := 0.0
	if round <= p.sch.Horizon {
		loss = p.sch.MsgLoss
	}
	if loss > 0 || len(drops) > 0 {
		roundKey := splitmix64(p.seed ^ uint64(round)*0x9E3779B97F4A7C15)
		scripted := drops
		per.Drop = func(from, to int) bool {
			if scripted != nil && scripted[[2]int{from, to}] {
				return true
			}
			if loss <= 0 {
				return false
			}
			h := splitmix64(roundKey ^ (uint64(uint32(from))<<32 | uint64(uint32(to))))
			return dropChance(h) < loss
		}
		if loss > 0 {
			faulted = true
			if p.record {
				// Enumerate the round's pure-hash drops so the trace alone
				// replays the run (scripted drops are already recorded).
				topo := g
				if per.Topology != nil {
					topo = per.Topology
				}
				for v := 0; v < topo.N(); v++ {
					for _, w := range topo.Neighbors(v) {
						if scripted != nil && scripted[[2]int{int(w), v}] {
							continue
						}
						if per.Drop(int(w), v) {
							p.trace = append(p.trace, Event{Round: round, Op: OpDrop, U: int(w), V: v})
						}
					}
				}
			}
		}
	}

	if faulted {
		p.lastFault = round
	}
	return per
}

// Active implements runtime.Perturber: the run stays open through the
// adversary window, the scripted-event tail, and any pending crash/skew
// recoveries.
func (p *Perturber) Active(round int) bool {
	if round <= p.sch.Horizon || round <= p.maxEvent {
		return true
	}
	for v := 0; v < p.n; v++ {
		if p.downUntil[v] >= 0 && p.downUntil[v]+1 >= round {
			return true
		}
		if p.skipUntil[v]+1 >= round {
			return true
		}
	}
	return false
}

// FaultStream materializes the schedule's scripted events and random edge
// churn for scenarios whose algorithms run outside the round kernel (link
// reversal, static CDS under churn). It uses a PCG stream independent of
// the kernel Perturber's and records every applied event for replay.
type FaultStream struct {
	sch   Schedule
	rng   *rand.Rand
	byRnd map[int][]Event
	trace []Event
}

// NewFaultStream builds the stream for one run.
func NewFaultStream(seed uint64, sch Schedule) *FaultStream {
	f := &FaultStream{
		sch:   sch,
		rng:   rand.New(rand.NewPCG(seed, 0xD1B54A32D192ED03)),
		byRnd: make(map[int][]Event),
	}
	for _, e := range sch.Events {
		f.byRnd[e.Round] = append(f.byRnd[e.Round], e)
	}
	return f
}

// RoundEvents returns the concrete churn events for the round: scripted
// edge events first, then the round's random draws against live (which is
// only read, never mutated — the caller applies the events).
func (f *FaultStream) RoundEvents(round int, live *graph.Graph) []Event {
	var out []Event
	emit := func(e Event) {
		e.Round = round
		out = append(out, e)
		f.trace = append(f.trace, e)
	}
	for _, e := range f.byRnd[round] {
		if e.Op == OpAddEdge || e.Op == OpRemoveEdge {
			emit(e)
		}
	}
	if round <= f.sch.Horizon {
		every := f.sch.ChurnEvery
		if every <= 0 {
			every = 1
		}
		if (f.sch.ChurnRemove > 0 || f.sch.ChurnAdd > 0) && round%every == 0 {
			removed := make(map[[2]int]bool)
			for i := 0; i < f.sch.ChurnRemove; i++ {
				edges := live.Edges()
				var candidates []graph.Edge
				for _, e := range edges {
					if !removed[[2]int{e.From, e.To}] {
						candidates = append(candidates, e)
					}
				}
				if len(candidates) == 0 {
					break
				}
				e := candidates[f.rng.IntN(len(candidates))]
				removed[[2]int{e.From, e.To}] = true
				emit(Event{Op: OpRemoveEdge, U: e.From, V: e.To})
			}
			n := live.N()
			for i := 0; i < f.sch.ChurnAdd; i++ {
				for try := 0; try < 16; try++ {
					u, v := f.rng.IntN(n), f.rng.IntN(n)
					if u == v || live.HasEdge(u, v) {
						continue
					}
					emit(Event{Op: OpAddEdge, U: u, V: v})
					break
				}
			}
		}
	}
	return out
}

// Trace returns every event emitted so far.
func (f *FaultStream) Trace() []Event { return append([]Event(nil), f.trace...) }

// MaxRound returns the last round that can still emit events.
func (f *FaultStream) MaxRound() int {
	m := f.sch.Horizon
	if me := f.sch.maxEventRound(); me > m {
		m = me
	}
	return m
}
