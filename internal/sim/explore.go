package sim

import (
	"errors"
	"fmt"
)

// Result is one fault-injected run, judged.
type Result struct {
	Scenario string
	Seed     uint64
	Schedule Schedule
	World    *World

	// Quiesced reports whether the run restabilized within its budget after
	// the fault window closed.
	Quiesced bool

	// LastFault is the last round at which a fault applied (0 if none).
	LastFault int

	// RecoveryRounds is the rounds-to-restabilize measure: how many rounds
	// after the last fault the system kept changing state, read off
	// Stats.History. -1 when the run never quiesced.
	RecoveryRounds int

	Violations []Violation
}

func (r *Result) String() string {
	verdict := "OK"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("%d violation(s)", len(r.Violations))
	}
	return fmt.Sprintf("%s seed=%d rounds=%d quiesced=%v recovery=%d: %s",
		r.Scenario, r.Seed, r.World.Stats.Rounds, r.Quiesced, r.RecoveryRounds, verdict)
}

// Explore runs a named scenario under (seed, sch) and checks the invariants
// (all registered ones when none are passed). The same (scenario, seed, sch)
// triple replays the identical Result — Explore IS the replay tool: paste a
// failing seed back in and the run reproduces byte-for-byte.
func Explore(scenario string, seed uint64, sch Schedule, invs ...Invariant) (*Result, error) {
	return ExploreWith(scenario, seed, sch, 0, invs...)
}

// ExploreWith is Explore with the kernel worker count pinned (0 = auto).
// Results are identical for every worker count; tests assert exactly that.
func ExploreWith(scenario string, seed uint64, sch Schedule, workers int, invs ...Invariant) (*Result, error) {
	sc, err := ScenarioByName(scenario)
	if err != nil {
		return nil, err
	}
	w, err := sc.Run(seed, sch, workers)
	if err != nil {
		return nil, err
	}
	if len(invs) == 0 {
		invs = Invariants()
	}
	var violations []Violation
	for _, inv := range invs {
		violations = append(violations, inv.Check(w)...)
	}
	return &Result{
		Scenario:       scenario,
		Seed:           seed,
		Schedule:       sch,
		World:          w,
		Quiesced:       w.Stats.Stable,
		LastFault:      w.LastFault,
		RecoveryRounds: recoveryRounds(w),
		Violations:     violations,
	}, nil
}

// recoveryRounds measures rounds-to-restabilize from Stats.History: the gap
// between the last fault and the last round that still changed any state.
func recoveryRounds(w *World) int {
	if !w.Stats.Stable {
		return -1
	}
	if w.LastFault == 0 {
		return 0 // nothing to recover from
	}
	lastActive := 0
	for _, rs := range w.Stats.History {
		if rs.Changed > 0 {
			lastActive = rs.Round
		}
	}
	if lastActive <= w.LastFault {
		return 0
	}
	return lastActive - w.LastFault
}

// concrete strips a schedule down to scripted events only, keeping the
// horizon/budget windows so replay runs exactly as long as the original.
func concrete(sch Schedule, events []Event) Schedule {
	sch.MsgLoss = 0
	sch.CrashProb = 0
	sch.SkewProb = 0
	sch.ChurnAdd = 0
	sch.ChurnRemove = 0
	sch.Events = events
	return sch
}

// Minimize shrinks a failing run to a minimal concrete fault schedule: it
// re-runs the scenario with tracing, replaces every probabilistic draw with
// the recorded event list, and then delta-debugs the list down to a locally
// minimal set that still violates an invariant. The returned schedule has
// all probabilities zeroed — it is a deterministic reproducer independent of
// the RNG.
func Minimize(scenario string, seed uint64, sch Schedule, invs ...Invariant) (Schedule, *Result, error) {
	base, err := Explore(scenario, seed, sch, invs...)
	if err != nil {
		return Schedule{}, nil, err
	}
	if len(base.Violations) == 0 {
		return Schedule{}, base, errors.New("sim: run does not violate any invariant; nothing to minimize")
	}
	fails := func(events []Event) (*Result, bool) {
		r, rerr := Explore(scenario, seed, concrete(sch, events), invs...)
		if rerr != nil {
			return nil, false
		}
		return r, len(r.Violations) > 0
	}
	events := base.World.Trace
	_, ok := fails(events)
	if !ok {
		// The trace alone does not reproduce the failure (should not happen:
		// every draw is materialized). Fall back to the original result.
		return sch, base, nil
	}
	// ddmin-style pass: sweep chunks of shrinking size; a successful drop
	// keeps the offset in place (a new chunk slid into it), a failed one
	// advances past the chunk.
	for chunk := (len(events) + 1) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(events); {
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			cand := make([]Event, 0, len(events)-(hi-lo))
			cand = append(cand, events[:lo]...)
			cand = append(cand, events[hi:]...)
			if _, bad := fails(cand); bad {
				events = cand
			} else {
				lo += chunk
			}
		}
	}
	min := concrete(sch, events)
	// Trim the adversary window to the surviving events so the reproducer is
	// tight — but only if the tighter window still reproduces the failure
	// (a smaller horizon also shrinks the default round budget).
	if me := min.maxEventRound(); me < min.Horizon {
		trimmed := min
		trimmed.Horizon = me
		if r, rerr := Explore(scenario, seed, trimmed, invs...); rerr == nil && len(r.Violations) > 0 {
			min = trimmed
		}
	}
	// Re-validate against the original failure before handing the schedule
	// out as a reproducer: a fresh replay of the minimized schedule must
	// still violate one of the invariants the base run violated. ddmin only
	// requires "some violation" at each step, so without this check the
	// shrinker can walk to a different failure than the one being debugged.
	verify, err := Explore(scenario, seed, min, invs...)
	if err != nil {
		return Schedule{}, nil, fmt.Errorf("sim: minimized schedule no longer replays: %w", err)
	}
	if len(verify.Violations) == 0 {
		return Schedule{}, nil, errors.New(
			"sim: minimization diverged: the minimized schedule no longer violates any invariant")
	}
	baseInvs := make(map[string]bool, len(base.Violations))
	for _, v := range base.Violations {
		baseInvs[v.Invariant] = true
	}
	shared := false
	for _, v := range verify.Violations {
		if baseInvs[v.Invariant] {
			shared = true
			break
		}
	}
	if !shared {
		return Schedule{}, nil, fmt.Errorf(
			"sim: minimization diverged: minimized schedule violates %s, the original run violated %s",
			invariantNames(verify.Violations), invariantNames(base.Violations))
	}
	return min, verify, nil
}

// invariantNames lists the distinct invariant names in a violation set, in
// first-appearance order.
func invariantNames(viols []Violation) string {
	var names []string
	seen := map[string]bool{}
	for _, v := range viols {
		if !seen[v.Invariant] {
			seen[v.Invariant] = true
			names = append(names, v.Invariant)
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
