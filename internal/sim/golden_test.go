package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCase is the seed-replay corpus schema: a named (scenario, seed,
// schedule) triple plus the behavior band the run must stay inside. The
// corpus pins the harness's observable behavior — a kernel or scenario
// change that shifts convergence beyond the tolerance band fails here
// before it reaches an experiment table.
type goldenCase struct {
	Name              string   `json:"name"`
	Scenario          string   `json:"scenario"`
	Seed              uint64   `json:"seed"`
	Schedule          Schedule `json:"schedule"`
	ExpectQuiesced    bool     `json:"expect_quiesced"`
	ExpectViolations  bool     `json:"expect_violations"`
	MaxRecoveryRounds int      `json:"max_recovery_rounds"`
}

func TestGoldenSchedules(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "schedules", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("seed-replay corpus too small: %v", files)
	}
	for _, f := range files {
		f := f
		// heal-*.json cases belong to the supervised-engine corpus (replayed
		// by the heal package's golden test) and async-*.json to the
		// event-driven executor corpus (replayed by the async package's).
		if strings.HasPrefix(filepath.Base(f), "heal-") ||
			strings.HasPrefix(filepath.Base(f), "async-") {
			continue
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var gc goldenCase
			if err := json.Unmarshal(raw, &gc); err != nil {
				t.Fatalf("corpus file does not parse: %v", err)
			}
			r, err := Explore(gc.Scenario, gc.Seed, gc.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if r.Quiesced != gc.ExpectQuiesced {
				t.Errorf("quiesced = %v, corpus expects %v", r.Quiesced, gc.ExpectQuiesced)
			}
			if got := len(r.Violations) > 0; got != gc.ExpectViolations {
				t.Errorf("violations present = %v, corpus expects %v (%v)", got, gc.ExpectViolations, r.Violations)
			}
			if gc.ExpectQuiesced {
				if r.RecoveryRounds < 0 || r.RecoveryRounds > gc.MaxRecoveryRounds {
					t.Errorf("rounds-to-restabilize = %d, outside tolerance band [0, %d]",
						r.RecoveryRounds, gc.MaxRecoveryRounds)
				}
			}
			// The corpus doubles as a replay regression: the same file must
			// reproduce the same run bit-for-bit.
			again, err := Explore(gc.Scenario, gc.Seed, gc.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(r) != fingerprint(again) {
				t.Error("corpus replay diverged between two runs")
			}
		})
	}
}

// TestScheduleJSONRoundTrip pins the Schedule wire format the corpus and
// the chaos subcommand share.
func TestScheduleJSONRoundTrip(t *testing.T) {
	sch := chaosSchedule()
	sch.Events = []Event{
		{Round: 3, Op: OpCrash, U: 4, For: 2},
		{Round: 5, Op: OpRemoveEdge, U: 1, V: 2},
		{Round: 6, Op: OpDrop, U: 7, V: 8},
	}
	raw, err := json.Marshal(sch)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	r1, err := Explore("mis", 3, sch)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Explore("mis", 3, back)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(r1) != fingerprint(r2) {
		t.Fatal("schedule changed across a JSON round trip")
	}
}
