package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/reversal"
	"structura/internal/runtime"
)

// Scenario couples a seeded topology with one labeling algorithm run under a
// fault schedule. Run must be a pure function of (seed, sch, workers): the
// same triple replays the same World byte-for-byte regardless of worker
// count, which is what makes seeds shareable bug reports.
type Scenario struct {
	Name string
	Desc string
	Run  func(seed uint64, sch Schedule, workers int) (*World, error)
}

var scenarios = map[string]Scenario{}

func registerScenario(s Scenario) { scenarios[s.Name] = s }

// ScenarioByName finds a builtin scenario.
func ScenarioByName(name string) (Scenario, error) {
	s, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("sim: unknown scenario %q", name)
	}
	return s, nil
}

// BuiltinScenarios lists the builtin scenarios sorted by name.
func BuiltinScenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	registerScenario(Scenario{
		Name: "mis",
		Desc: "three-color MIS election on a sparse random graph under kernel faults",
		Run:  runMISScenario,
	})
	registerScenario(Scenario{
		Name: "cds",
		Desc: "static Wu-Dai CDS labels on a grid, support graph churned underneath",
		Run:  runCDSScenario,
	})
	registerScenario(Scenario{
		Name: "reversal-full",
		Desc: "full link reversal on a chordal ring under link failures",
		Run: func(seed uint64, sch Schedule, workers int) (*World, error) {
			return runReversalScenario("reversal-full", reversal.Full, seed, sch)
		},
	})
	registerScenario(Scenario{
		Name: "reversal-partial",
		Desc: "partial (Gafni-Bertsekas) link reversal on a chordal ring under link failures",
		Run: func(seed uint64, sch Schedule, workers int) (*World, error) {
			return runReversalScenario("reversal-partial", reversal.Partial, seed, sch)
		},
	})
	registerScenario(Scenario{
		Name: "reversal-binary",
		Desc: "binary-link-label reversal (Charron-Bost Rule 1/2) under link failures",
		Run:  runBinaryScenario,
	})
	registerScenario(Scenario{
		Name: "distvec",
		Desc: "hop-count distance-vector labels toward node 0 on a chordal ring",
		Run:  runDistVecScenario,
	})
	registerScenario(Scenario{
		Name: "hypercube",
		Desc: "hypercube safety levels with seed-drawn faulty nodes under kernel faults",
		Run:  runCubeScenario,
	})
}

// statsFrom assembles runtime.Stats from an observed per-round history, for
// scenarios that cannot get the kernel's own Stats back (or that run outside
// the kernel entirely).
func statsFrom(hist []runtime.RoundStats, stable bool) runtime.Stats {
	st := runtime.Stats{Rounds: len(hist), Stable: stable, History: hist}
	for _, rs := range hist {
		st.Messages += rs.Messages
	}
	return st
}

func runMISScenario(seed uint64, sch Schedule, workers int) (*World, error) {
	g := MISGraph(seed)
	per := NewPerturber(g, seed, sch)
	per.EnableTrace()
	var hist []runtime.RoundStats
	res, err := labeling.DistributedMIS(g, labeling.PriorityByID(g.N()),
		runtime.WithPerturber(per),
		runtime.WithMaxRounds(sch.budget(g.N())),
		runtime.WithParallelism(workers),
		runtime.WithObserver(func(rs runtime.RoundStats) { hist = append(hist, rs) }),
	)
	stable := err == nil
	if err != nil && !errors.Is(err, labeling.ErrUnstable) {
		return nil, err
	}
	return &World{
		Scenario:  "mis",
		Graph:     per.FinalGraph(),
		Stats:     statsFrom(hist, stable),
		Trace:     per.Trace(),
		LastFault: per.LastFaultRound(),
		MIS:       &MISWorld{Colors: res.Colors, Stable: stable},
	}, nil
}

func runCDSScenario(seed uint64, sch Schedule, workers int) (*World, error) {
	// Labels are computed once on the pristine grid; the schedule then churns
	// the support underneath them. The invariants measure how long a static
	// labeling survives a dynamic environment — the paper's core contrast.
	g := CDSGrid()
	cds, mis, err := labeling.CDSFromMIS(g, labeling.PriorityByID(g.N()))
	if err != nil {
		return nil, err
	}
	live := g.Clone()
	fs := NewFaultStream(seed, sch)
	var hist []runtime.RoundStats
	lastFault := 0
	for round := 1; round <= fs.MaxRound(); round++ {
		applied := 0
		for _, e := range fs.RoundEvents(round, live) {
			switch e.Op {
			case OpAddEdge:
				if e.U != e.V && !live.HasEdge(e.U, e.V) && live.AddEdge(e.U, e.V) == nil {
					applied++
				}
			case OpRemoveEdge:
				if live.RemoveEdge(e.U, e.V) {
					applied++
				}
			}
		}
		if applied > 0 {
			lastFault = round
		}
		hist = append(hist, runtime.RoundStats{Round: round, Changed: applied})
	}
	colors := make([]labeling.Color, g.N())
	for _, v := range mis {
		colors[v] = labeling.Black
	}
	return &World{
		Scenario:  "cds",
		Graph:     live,
		Stats:     statsFrom(hist, true),
		Trace:     fs.Trace(),
		LastFault: lastFault,
		CDS:       &CDSWorld{Members: cds},
	}, nil
}

// reversalAlphas derives valid initial heights (destination strictly
// minimal) from BFS distances on the support.
func reversalAlphas(g *graph.Graph, dest int) ([]int, error) {
	dist, _, err := g.BFS(dest)
	if err != nil {
		return nil, err
	}
	alphas := make([]int, g.N())
	for v, d := range dist {
		if d < 0 {
			return nil, fmt.Errorf("sim: support disconnected at node %d", v)
		}
		alphas[v] = d
	}
	return alphas, nil
}

// reversalEngine abstracts the three link-reversal variants behind the small
// surface the fault loop needs.
type reversalEngine interface {
	RemoveLink(u, v int) bool
	Step() []int
	Sinks() []int
	PointsTo(u, v int) bool
}

func runReversalLoop(name string, eng reversalEngine, live *graph.Graph, seed uint64, sch Schedule) (*World, error) {
	n := live.N()
	fs := NewFaultStream(seed, sch)
	perNode := make(map[int]int)
	total, fails, lastFault := 0, 0, 0
	var hist []runtime.RoundStats
	for round := 1; round <= fs.MaxRound(); round++ {
		for _, e := range fs.RoundEvents(round, live) {
			// Reversal repairs after failures only; the variants have no
			// link-addition rule, so add events are recorded but not applied.
			if e.Op == OpRemoveEdge && eng.RemoveLink(e.U, e.V) {
				live.RemoveEdge(e.U, e.V)
				fails++
				lastFault = round
			}
		}
		acted := eng.Step()
		total += len(acted)
		for _, v := range acted {
			perNode[v]++
		}
		hist = append(hist, runtime.RoundStats{Round: round, Changed: len(acted)})
	}
	budget := sch.Budget
	if budget <= 0 {
		budget = 4 * n * n // comfortably above the O(n^2) reversal bound
	}
	round := fs.MaxRound()
	for extra := 0; extra < budget; extra++ {
		acted := eng.Step()
		if len(acted) == 0 {
			break
		}
		round++
		total += len(acted)
		for _, v := range acted {
			perNode[v]++
		}
		hist = append(hist, runtime.RoundStats{Round: round, Changed: len(acted)})
	}
	stable := len(eng.Sinks()) == 0
	return &World{
		Scenario:  name,
		Graph:     live,
		Stats:     statsFrom(hist, stable),
		Trace:     fs.Trace(),
		LastFault: lastFault,
		Rev: &RevWorld{
			N:        n,
			Dest:     0,
			Mode:     name,
			Support:  live,
			PointsTo: eng.PointsTo,
			Sinks:    eng.Sinks(),
			Fails:    fails,
			Total:    total,
			PerNode:  perNode,
			Stable:   stable,
		},
	}, nil
}

func runReversalScenario(name string, mode reversal.Mode, seed uint64, sch Schedule) (*World, error) {
	g := ReversalRing(seed)
	alphas, err := reversalAlphas(g, 0)
	if err != nil {
		return nil, err
	}
	net, err := reversal.NewNetwork(g, alphas, 0, mode)
	if err != nil {
		return nil, err
	}
	return runReversalLoop(name, net, g.Clone(), seed, sch)
}

func runBinaryScenario(seed uint64, sch Schedule, workers int) (*World, error) {
	g := ReversalRing(seed)
	alphas, err := reversalAlphas(g, 0)
	if err != nil {
		return nil, err
	}
	// Uniform label 1 makes Rule 2 fire first: the full-reversal face of the
	// unified algorithm.
	b, err := reversal.NewBinaryLR(g, alphas, 0, 1)
	if err != nil {
		return nil, err
	}
	return runReversalLoop("reversal-binary", b, g.Clone(), seed, sch)
}

func runDistVecScenario(seed uint64, sch Schedule, workers int) (*World, error) {
	// The step below recomputes hop counts from the neighbor views alone (no
	// captured CSR), so it stays well-defined when the perturber swaps the
	// topology mid-run — unlike distvec.Compute, whose weighted step reads
	// the frozen snapshot it was built on.
	g := DistVecRing(seed)
	const dest = 0
	per := NewPerturber(g, seed, sch)
	per.EnableTrace()
	dist, stats, err := runtime.RunCSR(g.Freeze(),
		func(v int) float64 {
			if v == dest {
				return 0
			}
			return math.Inf(1)
		},
		func(v int, self float64, nbrs []float64) (float64, bool) {
			if v == dest {
				return 0, false
			}
			best := math.Inf(1)
			for _, d := range nbrs {
				if d+1 < best {
					best = d + 1
				}
			}
			return best, best != self
		},
		runtime.WithPerturber(per),
		runtime.WithMaxRounds(sch.budget(g.N())),
		runtime.WithParallelism(workers),
	)
	if err != nil {
		return nil, err
	}
	return &World{
		Scenario:  "distvec",
		Graph:     per.FinalGraph(),
		Stats:     stats,
		Trace:     per.Trace(),
		LastFault: per.LastFaultRound(),
		Dist:      &DistWorld{Dest: dest, Dist: dist, Stable: stats.Stable},
	}, nil
}

// cubeState is the per-node state of the monotonicity-instrumented safety
// level process: the current level, the minimum ever announced, and the peak
// reached after that minimum (zero while levels behave monotonically).
type cubeState struct {
	Level, Min, Peak int
}

func runCubeScenario(seed uint64, sch Schedule, workers int) (*World, error) {
	cube := FaultyCube(seed)
	g := cube.Graph()
	per := NewPerturber(g, seed, sch)
	per.EnableTrace()
	states, stats, err := runtime.RunCSR(g.Freeze(),
		func(v int) cubeState {
			if cube.Faulty(v) {
				return cubeState{Level: 0, Min: 0}
			}
			return cubeState{Level: cubeDim, Min: cubeDim}
		},
		func(v int, self cubeState, nbrs []cubeState) (cubeState, bool) {
			if cube.Faulty(v) {
				return cubeState{Level: 0, Min: 0}, self.Level != 0
			}
			nl := make([]int, len(nbrs))
			for i, s := range nbrs {
				nl[i] = s.Level
			}
			l := hypercube.LevelFromNeighborLevels(nl, cubeDim)
			out := self
			out.Level = l
			if l > out.Min && l > out.Peak {
				out.Peak = l
			}
			if l < out.Min {
				out.Min = l
			}
			return out, out != self
		},
		runtime.WithPerturber(per),
		runtime.WithMaxRounds(sch.budget(g.N())),
		runtime.WithParallelism(workers),
	)
	if err != nil {
		return nil, err
	}
	n := g.N()
	cw := &CubeWorld{
		Dim:       cubeDim,
		Faulty:    make([]bool, n),
		Levels:    make([]int, n),
		MinLevels: make([]int, n),
		Peaks:     make([]int, n),
	}
	for v, s := range states {
		cw.Faulty[v] = cube.Faulty(v)
		cw.Levels[v] = s.Level
		cw.MinLevels[v] = s.Min
		cw.Peaks[v] = s.Peak
	}
	return &World{
		Scenario:  "hypercube",
		Graph:     per.FinalGraph(),
		Stats:     stats,
		Trace:     per.Trace(),
		LastFault: per.LastFaultRound(),
		Cube:      cw,
	}, nil
}
