package sim

import (
	"fmt"
	"math"
	"sort"

	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/runtime"
)

// World is what a scenario exposes to invariant checkers after a run: the
// final (post-churn) topology, the kernel statistics, and exactly one
// algorithm-specific section. Checkers return nil for worlds whose section
// they do not inspect, so one registry serves every scenario.
type World struct {
	Scenario  string
	Graph     *graph.Graph // final support topology
	Stats     runtime.Stats
	Trace     []Event // every concrete fault applied, in application order
	LastFault int     // last round at which any fault applied (0 if none)

	MIS  *MISWorld
	CDS  *CDSWorld
	Rev  *RevWorld
	Dist *DistWorld
	Cube *CubeWorld
}

// MISWorld carries the final three-color labels.
type MISWorld struct {
	Colors []labeling.Color
	Stable bool
}

// CDSWorld carries the connected-dominating-set membership computed before
// churn began.
type CDSWorld struct {
	Members []int
}

// RevWorld captures a link-reversal network after the fault window and the
// post-window stabilization budget.
type RevWorld struct {
	N        int
	Dest     int
	Mode     string // "full", "partial", "binary0", "binary1"
	Support  *graph.Graph
	PointsTo func(u, v int) bool // current orientation of link (u,v)
	Sinks    []int
	Fails    int // link failures injected
	Total    int // total sink activations across the run
	PerNode  map[int]int
	Stable   bool
}

// DistWorld carries the final distance-vector labels toward Dest.
type DistWorld struct {
	Dest   int
	Dist   []float64
	Stable bool
}

// CubeWorld carries final hypercube safety levels plus, per node, the
// minimum level it ever announced and the peak level it reached AFTER that
// minimum. In a fault-free run levels only decrease, so Peak stays at zero;
// Peak > Min records a monotonicity breach even when the level later
// re-converges to its correct value.
type CubeWorld struct {
	Dim       int
	Faulty    []bool
	Levels    []int
	MinLevels []int
	Peaks     []int
}

// Violation names an invariant breach precisely enough to debug it: the
// offending node, or the offending edge when the breach is edge-level
// (Node == -1).
type Violation struct {
	Invariant string
	Node      int
	Edge      [2]int
	Detail    string
}

func (v Violation) String() string {
	if v.Node >= 0 {
		return fmt.Sprintf("%s: node %d: %s", v.Invariant, v.Node, v.Detail)
	}
	return fmt.Sprintf("%s: edge (%d,%d): %s", v.Invariant, v.Edge[0], v.Edge[1], v.Detail)
}

func nodeViolation(inv string, node int, format string, args ...any) Violation {
	return Violation{Invariant: inv, Node: node, Edge: [2]int{-1, -1}, Detail: fmt.Sprintf(format, args...)}
}

func edgeViolation(inv string, u, v int, format string, args ...any) Violation {
	return Violation{Invariant: inv, Node: -1, Edge: [2]int{u, v}, Detail: fmt.Sprintf(format, args...)}
}

// Invariant is a reusable structural property checker.
type Invariant struct {
	Name  string
	Desc  string
	Check func(w *World) []Violation
}

var registry []Invariant

// Register adds an invariant to the registry. Standard checkers register
// themselves in init; tests may add scenario-specific ones.
func Register(inv Invariant) { registry = append(registry, inv) }

// Invariants returns every registered invariant, sorted by name.
func Invariants() []Invariant {
	out := append([]Invariant(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds an invariant by name.
func Lookup(name string) (Invariant, error) {
	for _, inv := range registry {
		if inv.Name == name {
			return inv, nil
		}
	}
	return Invariant{}, fmt.Errorf("sim: unknown invariant %q", name)
}

func init() {
	Register(Invariant{
		Name:  "mis-independence",
		Desc:  "no two Black nodes are adjacent",
		Check: checkMISIndependence,
	})
	Register(Invariant{
		Name:  "mis-maximality",
		Desc:  "every node is Black or has a Black neighbor",
		Check: checkMISMaximality,
	})
	Register(Invariant{
		Name:  "cds-domination",
		Desc:  "every node outside the CDS has a neighbor inside",
		Check: checkCDSDomination,
	})
	Register(Invariant{
		Name:  "cds-connectivity",
		Desc:  "the induced subgraph on the CDS is connected",
		Check: checkCDSConnectivity,
	})
	Register(Invariant{
		Name:  "reversal-destination-oriented",
		Desc:  "after stabilization every node reaches the destination along oriented links",
		Check: checkReversalOriented,
	})
	Register(Invariant{
		Name:  "reversal-count-bound",
		Desc:  "per-node reversal count stays within n per link failure (O(n^2) total)",
		Check: checkReversalCountBound,
	})
	Register(Invariant{
		Name:  "distvec-bfs-agreement",
		Desc:  "distance labels equal BFS distances on the final topology at quiescence",
		Check: checkDistVecBFS,
	})
	Register(Invariant{
		Name:  "hypercube-level-monotone",
		Desc:  "safety levels never rise above the minimum a node has announced",
		Check: checkCubeMonotone,
	})
	Register(Invariant{
		Name:  "hypercube-level-consistent",
		Desc:  "at quiescence every non-faulty node's level satisfies the footnote-3 rule on its live neighborhood",
		Check: checkCubeConsistent,
	})
}

func checkMISIndependence(w *World) []Violation {
	if w.MIS == nil {
		return nil
	}
	var out []Violation
	for _, e := range w.Graph.Edges() {
		if w.MIS.Colors[e.From] == labeling.Black && w.MIS.Colors[e.To] == labeling.Black {
			out = append(out, edgeViolation("mis-independence", e.From, e.To,
				"both endpoints are Black"))
		}
	}
	return out
}

func checkMISMaximality(w *World) []Violation {
	if w.MIS == nil {
		return nil
	}
	var out []Violation
	for v := 0; v < w.Graph.N(); v++ {
		if w.MIS.Colors[v] == labeling.Black {
			continue
		}
		dominated := false
		w.Graph.EachNeighbor(v, func(u int, _ float64) {
			if w.MIS.Colors[u] == labeling.Black {
				dominated = true
			}
		})
		if !dominated {
			out = append(out, nodeViolation("mis-maximality", v,
				"color %d with no Black neighbor", w.MIS.Colors[v]))
		}
	}
	return out
}

func checkCDSDomination(w *World) []Violation {
	if w.CDS == nil {
		return nil
	}
	in := labeling.SetOf(w.CDS.Members)
	var out []Violation
	for v := 0; v < w.Graph.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		w.Graph.EachNeighbor(v, func(u int, _ float64) {
			if in[u] {
				dominated = true
			}
		})
		if !dominated {
			out = append(out, nodeViolation("cds-domination", v, "no CDS neighbor"))
		}
	}
	return out
}

func checkCDSConnectivity(w *World) []Violation {
	if w.CDS == nil || len(w.CDS.Members) <= 1 {
		return nil
	}
	in := labeling.SetOf(w.CDS.Members)
	// BFS inside the CDS from its first member; members left unvisited sit
	// in a detached component.
	visited := map[int]bool{w.CDS.Members[0]: true}
	queue := []int{w.CDS.Members[0]}
	for head := 0; head < len(queue); head++ {
		w.Graph.EachNeighbor(queue[head], func(u int, _ float64) {
			if in[u] && !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		})
	}
	var out []Violation
	for _, v := range w.CDS.Members {
		if !visited[v] {
			out = append(out, nodeViolation("cds-connectivity", v,
				"detached from CDS component of node %d (%d of %d members reachable)",
				w.CDS.Members[0], len(queue), len(w.CDS.Members)))
		}
	}
	return out
}

func checkReversalOriented(w *World) []Violation {
	if w.Rev == nil {
		return nil
	}
	var out []Violation
	for _, s := range w.Rev.Sinks {
		out = append(out, nodeViolation("reversal-destination-oriented", s,
			"sink: every incident link points in"))
	}
	// Reachability along the orientation: BFS from the destination over
	// incoming links.
	reach := make([]bool, w.Rev.N)
	reach[w.Rev.Dest] = true
	queue := []int{w.Rev.Dest}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		w.Rev.Support.EachNeighbor(v, func(u int, _ float64) {
			if !reach[u] && w.Rev.PointsTo(u, v) {
				reach[u] = true
				queue = append(queue, u)
			}
		})
	}
	for v := 0; v < w.Rev.N; v++ {
		if w.Rev.Support.Degree(v) > 0 && !reach[v] {
			out = append(out, nodeViolation("reversal-destination-oriented", v,
				"cannot reach destination %d along oriented links", w.Rev.Dest))
		}
	}
	return out
}

func checkReversalCountBound(w *World) []Violation {
	if w.Rev == nil {
		return nil
	}
	events := w.Rev.Fails
	if events < 1 {
		events = 1
	}
	perNodeBound := w.Rev.N * events
	var out []Violation
	nodes := make([]int, 0, len(w.Rev.PerNode))
	for v := range w.Rev.PerNode {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		if c := w.Rev.PerNode[v]; c > perNodeBound {
			out = append(out, nodeViolation("reversal-count-bound", v,
				"%d reversals > bound %d (n=%d, failures=%d)", c, perNodeBound, w.Rev.N, events))
		}
	}
	if total := w.Rev.Total; total > w.Rev.N*perNodeBound {
		out = append(out, nodeViolation("reversal-count-bound", w.Rev.Dest,
			"total reversals %d > n^2-type bound %d", total, w.Rev.N*perNodeBound))
	}
	return out
}

func checkDistVecBFS(w *World) []Violation {
	if w.Dist == nil {
		return nil
	}
	dist, _, err := w.Graph.BFS(w.Dist.Dest)
	if err != nil {
		return []Violation{nodeViolation("distvec-bfs-agreement", w.Dist.Dest, "BFS failed: %v", err)}
	}
	suffix := ""
	if !w.Dist.Stable {
		suffix = " (run did not restabilize)"
	}
	var out []Violation
	for v, want := range dist {
		got := w.Dist.Dist[v]
		switch {
		case want < 0 && !math.IsInf(got, 1):
			out = append(out, nodeViolation("distvec-bfs-agreement", v,
				"label %.0f but destination unreachable%s", got, suffix))
		case want >= 0 && got != float64(want):
			out = append(out, nodeViolation("distvec-bfs-agreement", v,
				"label %v, BFS distance %d%s", got, want, suffix))
		}
	}
	return out
}

// checkCubeConsistent verifies the safety-level fixed point on the final
// topology: a stable run means the last round changed nothing, so every
// non-faulty level must equal the footnote-3 rule evaluated on its current
// neighbors' levels (faulty nodes stay at 0). Unstable runs are skipped —
// mid-convergence levels are legitimately inconsistent.
func checkCubeConsistent(w *World) []Violation {
	if w.Cube == nil || !w.Stats.Stable {
		return nil
	}
	var out []Violation
	var nl []int
	for v := 0; v < w.Graph.N(); v++ {
		if w.Cube.Faulty[v] {
			if w.Cube.Levels[v] != 0 {
				out = append(out, nodeViolation("hypercube-level-consistent", v,
					"faulty node at level %d, want 0", w.Cube.Levels[v]))
			}
			continue
		}
		nl = nl[:0]
		w.Graph.EachNeighbor(v, func(u int, _ float64) {
			nl = append(nl, w.Cube.Levels[u])
		})
		want := hypercube.LevelFromNeighborLevels(nl, w.Cube.Dim)
		if w.Cube.Levels[v] != want {
			out = append(out, nodeViolation("hypercube-level-consistent", v,
				"level %d, neighborhood rule gives %d", w.Cube.Levels[v], want))
		}
	}
	return out
}

func checkCubeMonotone(w *World) []Violation {
	if w.Cube == nil {
		return nil
	}
	var out []Violation
	for v, peak := range w.Cube.Peaks {
		if peak > w.Cube.MinLevels[v] {
			out = append(out, nodeViolation("hypercube-level-monotone", v,
				"level rose to %d after announcing %d", peak, w.Cube.MinLevels[v]))
		}
	}
	return out
}
