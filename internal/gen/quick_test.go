package gen

import (
	"testing"
	"testing/quick"

	"structura/internal/stats"
)

// Property: Barabási–Albert graphs always have exactly m + (n-m-1)*m edges
// (seed star + m per arrival), stay connected, and are simple.
func TestQuickBarabasiAlbertShape(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		m := int(mRaw%3) + 1
		n := int(nRaw%60) + m + 2
		g, err := BarabasiAlbert(stats.NewRand(seed), n, m)
		if err != nil {
			return false
		}
		if g.M() != m+(n-m-1)*m {
			return false
		}
		if !g.Connected() {
			return false
		}
		// Simplicity: neighbor lists contain no duplicates.
		for v := 0; v < n; v++ {
			seen := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				if w == v || seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every generated family is simple and undirected with the
// expected node count.
func TestQuickRegularFamilies(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 3
		for _, g := range []interface {
			N() int
			M() int
			Directed() bool
		}{
			Grid(n, n), Ring(n), Star(n), Complete(n), Path(n),
		} {
			if g.Directed() {
				return false
			}
		}
		if Grid(n, n).N() != n*n || Ring(n).M() != n || Star(n).M() != n-1 {
			return false
		}
		if Complete(n).M() != n*(n-1)/2 || Path(n).M() != n-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the Gnutella generator is deterministic per seed and always
// yields a simple directed graph.
func TestQuickGnutellaDeterminism(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		cfg := DefaultGnutella()
		cfg.N = int(nRaw%100) + 50
		a, err := Gnutella(stats.NewRand(seed), cfg)
		if err != nil {
			return false
		}
		b, err := Gnutella(stats.NewRand(seed), cfg)
		if err != nil {
			return false
		}
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return a.Directed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
