// Package gen provides deterministic random-graph generators for the
// families the paper draws on: Erdős–Rényi, scale-free (Barabási–Albert),
// small-world (Watts–Strogatz), regular topologies, and a Gnutella-like
// directed power-law overlay calibrated to the SNAP p2p-Gnutella08 shape
// used in Fig. 3 of the paper.
package gen

import (
	"errors"
	"math"
	"math/rand"

	"structura/internal/graph"
	"structura/internal/stats"
)

// ErdosRenyi returns G(n, p): each unordered pair is an edge independently
// with probability p.
func ErdosRenyi(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// SparseErdosRenyi returns G(n, p) like ErdosRenyi but in O(n + m)
// expected time using geometric edge skipping (Batagelj–Brandes): instead
// of flipping a coin per pair, it jumps directly to the next successful
// pair. The draw differs from ErdosRenyi for the same rand stream but has
// the identical distribution, and it is what makes million-node sparse
// graphs practical to generate.
func SparseErdosRenyi(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	if n < 2 || p <= 0 {
		return g
	}
	if p >= 1 {
		return Complete(n)
	}
	logq := math.Log(1 - p)
	// Walk the strictly-lower-triangular pair matrix row by row (v, w<v),
	// skipping a geometric number of pairs between successes.
	v, w := 1, -1
	for v < n {
		w += 1 + int(math.Log(1-r.Float64())/logq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			_ = g.AddEdge(v, w)
		}
	}
	return g
}

// BarabasiAlbert grows a scale-free graph by preferential attachment: each
// new node attaches to m existing nodes chosen proportionally to degree.
// The resulting degree distribution follows a power law with exponent ~3.
func BarabasiAlbert(r *rand.Rand, n, m int) (*graph.Graph, error) {
	if m < 1 {
		return nil, errors.New("gen: BarabasiAlbert needs m >= 1")
	}
	if n < m+1 {
		return nil, errors.New("gen: BarabasiAlbert needs n >= m+1")
	}
	g := graph.New(n)
	// Seed: a star on the first m+1 nodes so every node has degree >= 1.
	targets := make([]int, 0, 2*n*m) // repeated-node list for preferential choice
	for v := 1; v <= m; v++ {
		_ = g.AddEdge(0, v)
		targets = append(targets, 0, v)
	}
	for v := m + 1; v < n; v++ {
		seen := make(map[int]bool, m)
		chosen := make([]int, 0, m) // keep draw order for determinism
		for len(chosen) < m {
			u := targets[r.Intn(len(targets))]
			if u != v && !seen[u] {
				seen[u] = true
				chosen = append(chosen, u)
			}
		}
		for _, u := range chosen {
			_ = g.AddEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	return g, nil
}

// WattsStrogatz builds a small-world ring lattice: n nodes each connected to
// k nearest neighbors (k even), with each edge rewired with probability beta.
func WattsStrogatz(r *rand.Rand, n, k int, beta float64) (*graph.Graph, error) {
	if k%2 != 0 || k < 2 {
		return nil, errors.New("gen: WattsStrogatz needs even k >= 2")
	}
	if n <= k {
		return nil, errors.New("gen: WattsStrogatz needs n > k")
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if r.Float64() < beta {
				// Rewire to a uniform non-self, non-duplicate target.
				for tries := 0; tries < 4*n; tries++ {
					w := r.Intn(n)
					if w != v && !g.HasEdge(v, w) {
						u = w
						break
					}
				}
			}
			if !g.HasEdge(v, u) && v != u {
				_ = g.AddEdge(v, u)
			}
		}
	}
	return g, nil
}

// Grid returns a rows x cols 4-neighbor lattice. Node (i,j) has ID i*cols+j.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := i*cols + j
			if j+1 < cols {
				_ = g.AddEdge(v, v+1)
			}
			if i+1 < rows {
				_ = g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// Ring returns the n-cycle.
func Ring(n int) *graph.Graph {
	g := graph.New(n)
	if n < 3 {
		if n == 2 {
			_ = g.AddEdge(0, 1)
		}
		return g
	}
	for v := 0; v < n; v++ {
		_ = g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(0, v)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the n-node path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		_ = g.AddEdge(v, v+1)
	}
	return g
}

// GnutellaConfig parameterizes the Gnutella-like overlay generator.
type GnutellaConfig struct {
	N        int     // number of peers (SNAP p2p-Gnutella08 has 6301)
	Alpha    float64 // out-degree power-law exponent (~2.4 for Gnutella)
	MaxDeg   int     // out-degree cap
	BackProb float64 // probability a link is reciprocated (densifies the SCC)
}

// DefaultGnutella returns a configuration calibrated to the shape of the
// SNAP p2p-Gnutella08 snapshot the paper's Fig. 3 uses: ~6.3k peers, ~20.8k
// links, power-law out-degree, one large strongly connected component.
func DefaultGnutella() GnutellaConfig {
	return GnutellaConfig{N: 6301, Alpha: 2.4, MaxDeg: 100, BackProb: 0.35}
}

// Gnutella generates a directed power-law overlay: each peer draws an
// out-degree from a truncated power law and wires to targets chosen
// preferentially by current in-degree (plus one smoothing count), with a
// BackProb chance of reciprocation. This is the documented substitution for
// the offline-unavailable SNAP dataset (see DESIGN.md §2).
func Gnutella(r *rand.Rand, cfg GnutellaConfig) (*graph.Graph, error) {
	if cfg.N < 2 {
		return nil, errors.New("gen: Gnutella needs N >= 2")
	}
	if cfg.Alpha <= 1 {
		return nil, errors.New("gen: Gnutella needs Alpha > 1")
	}
	maxDeg := cfg.MaxDeg
	if maxDeg < 1 {
		maxDeg = cfg.N - 1
	}
	g := graph.NewDirected(cfg.N)
	degs := stats.PowerLawInts(r, cfg.N, 1, maxDeg, cfg.Alpha)
	// Preferential target pool: node v appears once per in-link + once flat.
	pool := make([]int, 0, 4*cfg.N)
	for v := 0; v < cfg.N; v++ {
		pool = append(pool, v)
	}
	for v := 0; v < cfg.N; v++ {
		want := degs[v]
		if want > cfg.N-1 {
			want = cfg.N - 1
		}
		seen := make(map[int]bool, want)
		chosen := make([]int, 0, want) // keep draw order for determinism
		for tries := 0; len(chosen) < want && tries < 20*want+100; tries++ {
			u := pool[r.Intn(len(pool))]
			if u == v || seen[u] || g.HasEdge(v, u) {
				continue
			}
			seen[u] = true
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			_ = g.AddEdge(v, u)
			pool = append(pool, u)
			if r.Float64() < cfg.BackProb && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
				pool = append(pool, v)
			}
		}
	}
	return g, nil
}
