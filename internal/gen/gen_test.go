package gen

import (
	"testing"

	"structura/internal/stats"
)

func TestErdosRenyiDensity(t *testing.T) {
	r := stats.NewRand(1)
	g := ErdosRenyi(r, 200, 0.1)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	maxM := 200 * 199 / 2
	want := 0.1 * float64(maxM)
	if m := float64(g.M()); m < 0.8*want || m > 1.2*want {
		t.Errorf("M = %v, want ~%v", m, want)
	}
	if g.Directed() {
		t.Error("ER should be undirected")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := stats.NewRand(2)
	if g := ErdosRenyi(r, 10, 0); g.M() != 0 {
		t.Error("p=0 should give no edges")
	}
	if g := ErdosRenyi(r, 10, 1); g.M() != 45 {
		t.Errorf("p=1 should give complete graph, got M=%d", g.M())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := stats.NewRand(3)
	g, err := BarabasiAlbert(r, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	// m edges per new node after the seed star of m edges.
	wantM := 2 + (2000-3)*2
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	if !g.Connected() {
		t.Error("BA graph must be connected")
	}
	// Degree distribution should be heavy-tailed: fit alpha in [2, 4].
	fit, err := stats.FitPowerLawAuto(g.Degrees(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 2 || fit.Alpha > 4 {
		t.Errorf("BA power-law alpha = %v, want in [2,4]", fit.Alpha)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	r := stats.NewRand(4)
	if _, err := BarabasiAlbert(r, 10, 0); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := BarabasiAlbert(r, 2, 2); err == nil {
		t.Error("n <= m should error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := stats.NewRand(5)
	g, err := WattsStrogatz(r, 100, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	// Ring lattice has n*k/2 edges; rewiring preserves the count up to the
	// rare failure to find a target, and beta=0 keeps it exact.
	g0, err := WattsStrogatz(stats.NewRand(6), 100, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.M() != 200 {
		t.Errorf("beta=0 M = %d, want 200", g0.M())
	}
	if !g.Connected() {
		t.Error("WS with low beta should stay connected")
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := stats.NewRand(7)
	if _, err := WattsStrogatz(r, 10, 3, 0); err == nil {
		t.Error("odd k should error")
	}
	if _, err := WattsStrogatz(r, 4, 4, 0); err == nil {
		t.Error("n <= k should error")
	}
}

func TestRegularTopologies(t *testing.T) {
	if g := Grid(3, 4); g.N() != 12 || g.M() != 3*3+2*4 {
		t.Errorf("Grid(3,4): %v", g)
	}
	if g := Ring(5); g.M() != 5 || !g.Connected() {
		t.Errorf("Ring(5): %v", g)
	}
	if g := Ring(2); g.M() != 1 {
		t.Errorf("Ring(2): %v", g)
	}
	if g := Ring(1); g.M() != 0 {
		t.Errorf("Ring(1): %v", g)
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Errorf("Star(7): %v", g)
	}
	if g := Complete(5); g.M() != 10 {
		t.Errorf("Complete(5): %v", g)
	}
	if g := Path(4); g.M() != 3 || !g.Connected() {
		t.Errorf("Path(4): %v", g)
	}
}

func TestGridDistances(t *testing.T) {
	g := Grid(5, 5)
	dist, _, _ := g.BFS(0)
	if dist[24] != 8 {
		t.Errorf("corner-to-corner distance = %d, want 8", dist[24])
	}
}

func TestGnutella(t *testing.T) {
	r := stats.NewRand(8)
	cfg := DefaultGnutella()
	g, err := Gnutella(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != cfg.N || !g.Directed() {
		t.Fatalf("unexpected graph %v", g)
	}
	// Edge count should be in the ballpark of the SNAP snapshot (20.8k);
	// allow a broad band since the generator is stochastic.
	if g.M() < 8000 || g.M() > 40000 {
		t.Errorf("M = %d, want within [8k, 40k]", g.M())
	}
	// The overlay should have one big SCC (the paper's Fig. 3 uses the
	// largest SCC of the snapshot).
	scc, _ := g.LargestSCC()
	if scc.N() < cfg.N/4 {
		t.Errorf("largest SCC = %d nodes, want a giant component (>= n/4)", scc.N())
	}
	// Out-degree should be heavy-tailed.
	fit, err := stats.FitPowerLawAuto(g.Degrees(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.5 || fit.Alpha > 4 {
		t.Errorf("Gnutella alpha = %v, want heavy tail in [1.5,4]", fit.Alpha)
	}
}

func TestGnutellaErrors(t *testing.T) {
	r := stats.NewRand(9)
	if _, err := Gnutella(r, GnutellaConfig{N: 1, Alpha: 2}); err == nil {
		t.Error("N < 2 should error")
	}
	if _, err := Gnutella(r, GnutellaConfig{N: 10, Alpha: 1}); err == nil {
		t.Error("Alpha <= 1 should error")
	}
}

func TestDeterminism(t *testing.T) {
	g1, err := BarabasiAlbert(stats.NewRand(42), 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(stats.NewRand(42), 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed diverged at edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestSparseErdosRenyi(t *testing.T) {
	// Same distribution as the quadratic generator: the edge count of
	// G(n, p) concentrates around p*n*(n-1)/2.
	r := stats.NewRand(3)
	n, p := 2000, 0.005
	g := SparseErdosRenyi(r, n, p)
	mean := p * float64(n) * float64(n-1) / 2
	if m := float64(g.M()); m < mean*0.8 || m > mean*1.2 {
		t.Errorf("edge count %v far from expectation %v", m, mean)
	}
	// Simple graph: no self-loops or duplicate edges.
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if w == v {
				t.Fatalf("self-loop at %d", v)
			}
			if seen[w] {
				t.Fatalf("duplicate edge %d-%d", v, w)
			}
			seen[w] = true
		}
	}
	// Deterministic for a fixed seed.
	again := SparseErdosRenyi(stats.NewRand(3), n, p)
	if again.M() != g.M() {
		t.Errorf("same seed drew %d edges, then %d", g.M(), again.M())
	}
	// Degenerate parameters.
	if SparseErdosRenyi(stats.NewRand(1), 100, 0).M() != 0 {
		t.Error("p=0 must be empty")
	}
	if got := SparseErdosRenyi(stats.NewRand(1), 20, 1).M(); got != 190 {
		t.Errorf("p=1 drew %d edges, want complete 190", got)
	}
}
