package temporal

import (
	"encoding/json"
	"fmt"
)

// egJSON is the stable serialization schema, compatible with the trace
// documents cmd/tracegen emits.
type egJSON struct {
	Nodes    int           `json:"nodes"`
	Horizon  int           `json:"horizon"`
	Contacts []contactJSON `json:"contacts"`
}

type contactJSON struct {
	U int     `json:"U"`
	V int     `json:"V"`
	T int     `json:"T"`
	W float64 `json:"W,omitempty"`
}

// MarshalJSON implements json.Marshaler: node count, horizon, and the
// contact list (weight omitted when 1).
func (eg *EG) MarshalJSON() ([]byte, error) {
	doc := egJSON{Nodes: eg.n, Horizon: eg.horizon}
	for u := 0; u < eg.n; u++ {
		for _, e := range eg.adj[u] {
			if e.to < u {
				continue
			}
			for i, t := range e.labels {
				c := contactJSON{U: u, V: e.to, T: t}
				if e.weight[i] != 1 {
					c.W = e.weight[i]
				}
				doc.Contacts = append(doc.Contacts, c)
			}
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler, replacing the receiver with
// the decoded time-evolving graph.
func (eg *EG) UnmarshalJSON(data []byte) error {
	var doc egJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	fresh, err := New(doc.Nodes, doc.Horizon)
	if err != nil {
		return fmt.Errorf("temporal: invalid trace header: %w", err)
	}
	for _, c := range doc.Contacts {
		w := c.W
		if w == 0 {
			w = 1
		}
		if err := fresh.AddWeightedContact(c.U, c.V, c.T, w); err != nil {
			return fmt.Errorf("temporal: invalid contact (%d,%d,%d): %w", c.U, c.V, c.T, err)
		}
	}
	*eg = *fresh
	return nil
}
