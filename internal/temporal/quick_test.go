package temporal

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// egSpec is a quick-generatable description of a random EG.
type egSpec struct {
	N        uint8
	Horizon  uint8
	Contacts []struct{ U, V, T uint8 }
}

func (s egSpec) build() *EG {
	n := int(s.N%10) + 2
	h := int(s.Horizon%12) + 2
	eg, _ := New(n, h)
	for _, c := range s.Contacts {
		u, v, t := int(c.U)%n, int(c.V)%n, int(c.T)%h
		if u != v {
			_ = eg.AddContact(u, v, t)
		}
	}
	return eg
}

// Generate implements quick.Generator for richer contact lists.
func (egSpec) Generate(r *rand.Rand, size int) reflect.Value {
	var s egSpec
	s.N = uint8(r.Intn(256))
	s.Horizon = uint8(r.Intn(256))
	k := r.Intn(40)
	for i := 0; i < k; i++ {
		s.Contacts = append(s.Contacts, struct{ U, V, T uint8 }{
			uint8(r.Intn(256)), uint8(r.Intn(256)), uint8(r.Intn(256)),
		})
	}
	return reflect.ValueOf(s)
}

// Property: Labels are always sorted, deduplicated, and symmetric.
func TestQuickLabelsSortedSymmetric(t *testing.T) {
	f := func(s egSpec) bool {
		eg := s.build()
		for u := 0; u < eg.N(); u++ {
			for _, v := range eg.Neighbors(u) {
				l1 := eg.Labels(u, v)
				l2 := eg.Labels(v, u)
				if !sort.IntsAreSorted(l1) {
					return false
				}
				if len(l1) != len(l2) {
					return false
				}
				for i := range l1 {
					if l1[i] != l2[i] {
						return false
					}
					if i > 0 && l1[i] == l1[i-1] {
						return false // duplicate label
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: earliest arrival is monotone in start time — starting later can
// never let you arrive earlier.
func TestQuickEarliestArrivalMonotoneInStart(t *testing.T) {
	f := func(s egSpec, t1, t2 uint8) bool {
		eg := s.build()
		a := int(t1) % eg.Horizon()
		b := int(t2) % eg.Horizon()
		if a > b {
			a, b = b, a
		}
		arrA, _, err1 := eg.EarliestArrival(0, a)
		arrB, _, err2 := eg.EarliestArrival(0, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := range arrA {
			if arrA[v] > arrB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the clone leaves the original intact,
// and the two agree before mutation.
func TestQuickCloneDeep(t *testing.T) {
	f := func(s egSpec) bool {
		eg := s.build()
		before := eg.ContactCount()
		c := eg.Clone()
		if c.ContactCount() != before {
			return false
		}
		for u := 0; u < c.N(); u++ {
			for _, v := range append([]int(nil), c.Neighbors(u)...) {
				c.RemoveEdge(u, v)
			}
		}
		return eg.ContactCount() == before && c.ContactCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every journey returned by the three optimizers validates, and
// removing a contact never improves earliest arrival.
func TestQuickRemovalNeverImproves(t *testing.T) {
	f := func(s egSpec, pick uint8) bool {
		eg := s.build()
		arr1, _, err := eg.EarliestArrival(0, 0)
		if err != nil {
			return false
		}
		// Remove an arbitrary existing contact, if any.
		removed := false
		for u := 0; u < eg.N() && !removed; u++ {
			for _, v := range eg.Neighbors(u) {
				labels := eg.Labels(u, v)
				if len(labels) == 0 {
					continue
				}
				eg.RemoveContact(u, v, labels[int(pick)%len(labels)])
				removed = true
				break
			}
		}
		if !removed {
			return true
		}
		arr2, _, err := eg.EarliestArrival(0, 0)
		if err != nil {
			return false
		}
		for v := range arr1 {
			if arr2[v] < arr1[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ConnectedAt agrees with EarliestCompletionJourney existence, and
// every produced journey validates.
func TestQuickJourneysValidate(t *testing.T) {
	f := func(s egSpec, dstRaw, startRaw uint8) bool {
		eg := s.build()
		dst := int(dstRaw) % eg.N()
		start := int(startRaw) % eg.Horizon()
		connected := eg.ConnectedAt(0, dst, start)
		j, err := eg.EarliestCompletionJourney(0, dst, start)
		if connected != (err == nil) {
			return false
		}
		if err == nil {
			if eg.Validate(j, 0, dst, start) != nil {
				return false
			}
			mh, err2 := eg.MinHopJourney(0, dst, start)
			if err2 != nil || eg.Validate(mh, 0, dst, start) != nil {
				return false
			}
			if mh.Hops() > j.Hops() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
