// Package temporal implements the time-evolving graph (EG) model of §II-B:
// an ordered sequence of spanning subgraphs G_0..G_k where each edge carries
// the set of time units during which it exists. It provides journeys
// (time-respecting paths), the three path-optimization problems the paper
// lists (earliest completion time, minimum hop, fastest), time-sensitive
// connectivity, and the dynamic diameter (flooding time).
//
// Message transmission over a contact is instantaneous, as in the paper; a
// journey is a sequence of edges with non-decreasing labels, and nodes have
// sufficient storage to carry messages between contacts.
package temporal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"structura/internal/graph"
)

// Infinity marks an unreachable arrival time.
const Infinity = math.MaxInt64

// EG is an undirected time-evolving graph over nodes 0..N-1 and time units
// 0..Horizon-1. The zero value is unusable; construct with New.
type EG struct {
	n       int
	horizon int
	adj     [][]tempEdge
}

type tempEdge struct {
	to     int
	labels []int     // sorted ascending
	weight []float64 // parallel to labels; 1 by default
}

// New returns an EG with n nodes, horizon time units, and no contacts.
func New(n, horizon int) (*EG, error) {
	if n < 0 || horizon < 0 {
		return nil, errors.New("temporal: negative size")
	}
	return &EG{n: n, horizon: horizon, adj: make([][]tempEdge, n)}, nil
}

// N returns the number of nodes.
func (eg *EG) N() int { return eg.n }

// Horizon returns the number of time units.
func (eg *EG) Horizon() int { return eg.horizon }

func (eg *EG) check(v int) error {
	if v < 0 || v >= eg.n {
		return fmt.Errorf("temporal: node %d out of range [0,%d)", v, eg.n)
	}
	return nil
}

// AddContact records that edge (u,v) exists during time unit t with unit
// weight. Adding the same contact twice is a no-op.
func (eg *EG) AddContact(u, v, t int) error {
	return eg.AddWeightedContact(u, v, t, 1)
}

// AddWeightedContact records edge (u,v) at time t with weight w (e.g.
// bandwidth, delay, or reliability per §II-B). Re-adding an existing
// contact updates its weight.
func (eg *EG) AddWeightedContact(u, v, t int, w float64) error {
	if err := eg.check(u); err != nil {
		return err
	}
	if err := eg.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("temporal: self-contact at %d", u)
	}
	if t < 0 || t >= eg.horizon {
		return fmt.Errorf("temporal: time %d out of horizon [0,%d)", t, eg.horizon)
	}
	eg.insertHalf(u, v, t, w)
	eg.insertHalf(v, u, t, w)
	return nil
}

func (eg *EG) insertHalf(u, v, t int, w float64) {
	for i := range eg.adj[u] {
		e := &eg.adj[u][i]
		if e.to != v {
			continue
		}
		pos := sort.SearchInts(e.labels, t)
		if pos < len(e.labels) && e.labels[pos] == t {
			e.weight[pos] = w
			return
		}
		e.labels = append(e.labels, 0)
		copy(e.labels[pos+1:], e.labels[pos:])
		e.labels[pos] = t
		e.weight = append(e.weight, 0)
		copy(e.weight[pos+1:], e.weight[pos:])
		e.weight[pos] = w
		return
	}
	eg.adj[u] = append(eg.adj[u], tempEdge{to: v, labels: []int{t}, weight: []float64{w}})
}

// AddPeriodicContacts records contacts at phase, phase+period, ... up to the
// horizon — the cyclic edge labels of Fig. 2 ("(B,D) and (C,D) have a cycle
// of 6, (A,D) has 2, ...").
func (eg *EG) AddPeriodicContacts(u, v, phase, period int) error {
	if period <= 0 {
		return errors.New("temporal: period must be positive")
	}
	if phase < 0 {
		return errors.New("temporal: negative phase")
	}
	for t := phase; t < eg.horizon; t += period {
		if err := eg.AddContact(u, v, t); err != nil {
			return err
		}
	}
	return nil
}

// RemoveContact deletes the contact (u,v,t); it reports whether it existed.
func (eg *EG) RemoveContact(u, v, t int) bool {
	return eg.removeHalf(u, v, t) && eg.removeHalf(v, u, t)
}

func (eg *EG) removeHalf(u, v, t int) bool {
	if u < 0 || u >= eg.n {
		return false
	}
	for i := range eg.adj[u] {
		e := &eg.adj[u][i]
		if e.to != v {
			continue
		}
		pos := sort.SearchInts(e.labels, t)
		if pos >= len(e.labels) || e.labels[pos] != t {
			return false
		}
		e.labels = append(e.labels[:pos], e.labels[pos+1:]...)
		e.weight = append(e.weight[:pos], e.weight[pos+1:]...)
		if len(e.labels) == 0 {
			eg.adj[u] = append(eg.adj[u][:i], eg.adj[u][i+1:]...)
		}
		return true
	}
	return false
}

// RemoveEdge removes all contacts between u and v, reporting whether any
// existed.
func (eg *EG) RemoveEdge(u, v int) bool {
	labels := eg.Labels(u, v)
	for _, t := range labels {
		eg.RemoveContact(u, v, t)
	}
	return len(labels) > 0
}

// RemoveNode removes every contact incident to v (the node stays as an
// isolated vertex, matching the paper's node-trimming semantics).
func (eg *EG) RemoveNode(v int) {
	if v < 0 || v >= eg.n {
		return
	}
	for _, e := range append([]tempEdge(nil), eg.adj[v]...) {
		eg.RemoveEdge(v, e.to)
	}
}

// Labels returns the sorted label set of edge (u,v) (nil if absent). The
// returned slice is a copy.
func (eg *EG) Labels(u, v int) []int {
	if u < 0 || u >= eg.n {
		return nil
	}
	for _, e := range eg.adj[u] {
		if e.to == v {
			return append([]int(nil), e.labels...)
		}
	}
	return nil
}

// Weight returns the weight of contact (u,v,t).
func (eg *EG) Weight(u, v, t int) (float64, error) {
	if u < 0 || u >= eg.n {
		return 0, fmt.Errorf("temporal: node %d out of range", u)
	}
	for _, e := range eg.adj[u] {
		if e.to != v {
			continue
		}
		pos := sort.SearchInts(e.labels, t)
		if pos < len(e.labels) && e.labels[pos] == t {
			return e.weight[pos], nil
		}
	}
	return 0, fmt.Errorf("temporal: no contact (%d,%d,%d)", u, v, t)
}

// Neighbors returns the nodes sharing at least one contact with v. The
// returned slice is a copy; iteration-only callers should prefer
// EachNeighbor, which does not allocate.
func (eg *EG) Neighbors(v int) []int {
	if v < 0 || v >= eg.n {
		return nil
	}
	out := make([]int, len(eg.adj[v]))
	for i, e := range eg.adj[v] {
		out[i] = e.to
	}
	return out
}

// EachNeighbor calls fn for every node sharing at least one contact with
// v, in adjacency (first-contact) order, without allocating. fn returns
// false to stop the iteration early.
func (eg *EG) EachNeighbor(v int, fn func(u int) bool) {
	if v < 0 || v >= eg.n {
		return
	}
	for _, e := range eg.adj[v] {
		if !fn(e.to) {
			return
		}
	}
}

// Degree returns the number of distinct neighbors of v (nodes sharing at
// least one contact), without materializing the neighbor list.
func (eg *EG) Degree(v int) int {
	if v < 0 || v >= eg.n {
		return 0
	}
	return len(eg.adj[v])
}

// ContactCount returns the total number of contacts (edge-label pairs).
func (eg *EG) ContactCount() int {
	var c int
	for _, lst := range eg.adj {
		for _, e := range lst {
			c += len(e.labels)
		}
	}
	return c / 2
}

// Snapshot returns the static graph G_t of edges present at time unit t.
func (eg *EG) Snapshot(t int) *graph.Graph {
	g := graph.New(eg.n)
	for u, lst := range eg.adj {
		for _, e := range lst {
			if u < e.to {
				pos := sort.SearchInts(e.labels, t)
				if pos < len(e.labels) && e.labels[pos] == t {
					_ = g.AddEdge(u, e.to)
				}
			}
		}
	}
	return g
}

// Footprint returns the static graph with an edge wherever any contact
// exists (the union over all snapshots).
func (eg *EG) Footprint() *graph.Graph {
	g := graph.New(eg.n)
	for u, lst := range eg.adj {
		for _, e := range lst {
			if u < e.to && len(e.labels) > 0 {
				_ = g.AddEdge(u, e.to)
			}
		}
	}
	return g
}

// Clone returns a deep copy.
func (eg *EG) Clone() *EG {
	c := &EG{n: eg.n, horizon: eg.horizon, adj: make([][]tempEdge, eg.n)}
	for v, lst := range eg.adj {
		c.adj[v] = make([]tempEdge, len(lst))
		for i, e := range lst {
			c.adj[v][i] = tempEdge{
				to:     e.to,
				labels: append([]int(nil), e.labels...),
				weight: append([]float64(nil), e.weight...),
			}
		}
	}
	return c
}

// Fig2EG builds the paper's Fig. 2(c) VANET time-evolving graph: nodes
// A=0, B=1, C=2, D=3; B, C, D are mobile with moving cycles 3, 3, 2. The
// displayed edge labels have cycles 3 for (A,B) and (B,C), 2 for (A,D), and
// 6 = lcm(3,2) for (B,D) and (C,D). Horizon is 7 (time units 0..6), the
// window shown in the figure. Every temporal fact the paper states about
// Fig. 2 holds on this instance (see the package tests).
func Fig2EG() *EG {
	eg, _ := New(4, 7)
	const a, b, c, d = 0, 1, 2, 3
	must := func(err error) {
		if err != nil {
			panic(err) // unreachable: constants are in range
		}
	}
	must(eg.AddContact(a, b, 1))
	must(eg.AddContact(a, b, 4))
	must(eg.AddContact(b, c, 2))
	must(eg.AddContact(b, c, 5))
	must(eg.AddContact(a, d, 1))
	must(eg.AddContact(a, d, 3))
	must(eg.AddContact(b, d, 2))
	must(eg.AddContact(c, d, 0))
	must(eg.AddContact(c, d, 6))
	return eg
}

// TimeConnected reports whether the network is "time-i-connected" (§III-A):
// every ordered pair of nodes is connected at starting time i, i.e. a
// journey with first label >= i exists between every pair.
func (eg *EG) TimeConnected(i int) bool {
	for src := 0; src < eg.n; src++ {
		arr, _, err := eg.EarliestArrival(src, i)
		if err != nil {
			return false
		}
		for _, a := range arr {
			if a == Infinity {
				return false
			}
		}
	}
	return true
}
