package temporal

import (
	"fmt"

	"structura/internal/wal"
)

// LoadWindow builds a time-evolving graph for the batch-sequence window
// [from, to) from the durable history in a WAL store directory. The log's
// edge records carry validity intervals in batch-sequence time — an add
// opens an edge at its batch, a remove closes it, a weight change closes
// the old interval and opens a new one — so the window materializes as a
// single range scan over the committed (snapshot, log-suffix) pair: each
// time unit t of the returned EG holds a contact for every edge whose
// validity interval covers batch from+t. The scan stops early once the
// committed history passes `to`; nothing beyond the window is decoded into
// contacts.
//
// Snapshot edges are valid from the snapshot's batch seq (earlier history
// is compacted away); edges still open at the end of the log emit contacts
// through the whole window tail.
func LoadWindow(dir string, from, to uint64) (*EG, error) {
	return LoadWindowFS(nil, dir, from, to)
}

// LoadWindowFS is LoadWindow over an explicit wal.FS (nil means the real
// filesystem) — how tests replay windows from in-memory crash images.
func LoadWindowFS(fsys wal.FS, dir string, from, to uint64) (*EG, error) {
	if to < from {
		return nil, fmt.Errorf("temporal: window [%d,%d) is inverted", from, to)
	}

	// Open intervals under construction: edge key -> (start batch, weight).
	type open struct {
		start  uint64
		weight float64
	}
	type edgeKey struct{ u, v int32 }
	norm := func(u, v int32) edgeKey {
		if u > v {
			u, v = v, u
		}
		return edgeKey{u, v}
	}
	type span struct {
		u, v     int32
		from, to uint64 // [from, to) in batch time; to == ^0 while open
		weight   float64
	}

	openEdges := make(map[edgeKey]open)
	var spans []span
	var maxNode int32
	var seq uint64

	closeEdge := func(k edgeKey, o open, at uint64) {
		spans = append(spans, span{u: k.u, v: k.v, from: o.start, to: at, weight: o.weight})
	}

	rec, err := wal.Replay(fsys, dir, func(r wal.Record) error {
		switch r.Type {
		case wal.TCommit:
			seq = r.Seq
			// Past the window there is nothing left to observe: every
			// interval that could still intersect [from, to) is either
			// already closed or still open, and open intervals cover the
			// tail regardless of what later batches do to them.
			if seq >= to {
				return wal.ErrStopReplay
			}
		case wal.TAddEdge:
			if r.U > maxNode {
				maxNode = r.U
			}
			if r.V > maxNode {
				maxNode = r.V
			}
			k := norm(r.U, r.V)
			if _, dup := openEdges[k]; !dup {
				openEdges[k] = open{start: uint64(r.From), weight: r.Weight}
			}
		case wal.TRemoveEdge:
			k := norm(r.U, r.V)
			if o, ok := openEdges[k]; ok {
				closeEdge(k, o, uint64(r.To))
				delete(openEdges, k)
			}
		case wal.TWeight:
			k := norm(r.U, r.V)
			if o, ok := openEdges[k]; ok {
				closeEdge(k, o, uint64(r.From))
				openEdges[k] = open{start: uint64(r.From), weight: r.Weight}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rec.Seq > seq {
		seq = rec.Seq
	}

	// Close the still-open edges at the window's end so they emit contacts
	// through the tail.
	for k, o := range openEdges {
		closeEdge(k, o, to)
	}

	n := int(maxNode) + 1
	if rec.Nodes > n {
		n = rec.Nodes // isolated nodes carry no edge records but still exist
	}
	eg, err := New(n, int(to-from))
	if err != nil {
		return nil, err
	}
	for _, s := range spans {
		lo, hi := s.from, s.to
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		for b := lo; b < hi; b++ {
			if cerr := eg.AddWeightedContact(int(s.u), int(s.v), int(b-from), s.weight); cerr != nil {
				return nil, cerr
			}
		}
	}
	return eg, nil
}
