package temporal

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Hop is one contact used by a journey.
type Hop struct {
	From, To int
	Time     int
}

// Journey is a time-respecting path: consecutive hops share endpoints and
// have non-decreasing times (the paper's u -*-> v with non-decreasing edge
// labels).
type Journey []Hop

// Completion returns the arrival time of the journey (time of its last
// hop); 0 for an empty journey.
func (j Journey) Completion() int {
	if len(j) == 0 {
		return 0
	}
	return j[len(j)-1].Time
}

// Span returns elapsed time between first and last contact (the "fastest
// path" objective); 0 for journeys with fewer than 2 hops.
func (j Journey) Span() int {
	if len(j) == 0 {
		return 0
	}
	return j[len(j)-1].Time - j[0].Time
}

// Hops returns the hop count.
func (j Journey) Hops() int { return len(j) }

// Validate checks that j is a valid journey in eg from src to dst starting
// no earlier than start.
func (eg *EG) Validate(j Journey, src, dst, start int) error {
	if len(j) == 0 {
		if src == dst {
			return nil
		}
		return errors.New("temporal: empty journey for distinct endpoints")
	}
	if j[0].From != src {
		return fmt.Errorf("temporal: journey starts at %d, want %d", j[0].From, src)
	}
	if j[len(j)-1].To != dst {
		return fmt.Errorf("temporal: journey ends at %d, want %d", j[len(j)-1].To, dst)
	}
	prev := start
	cur := src
	for i, h := range j {
		if h.From != cur {
			return fmt.Errorf("temporal: hop %d starts at %d, want %d", i, h.From, cur)
		}
		if h.Time < prev {
			return fmt.Errorf("temporal: hop %d time %d decreases below %d", i, h.Time, prev)
		}
		labels := eg.Labels(h.From, h.To)
		pos := sort.SearchInts(labels, h.Time)
		if pos >= len(labels) || labels[pos] != h.Time {
			return fmt.Errorf("temporal: contact (%d,%d,%d) does not exist", h.From, h.To, h.Time)
		}
		prev = h.Time
		cur = h.To
	}
	return nil
}

// EarliestArrival computes, for every node, the earliest completion time of
// a journey from src whose first contact is at time >= start (the paper's
// "earliest completion time path"), along with predecessor hops for path
// reconstruction. Unreachable nodes get Infinity.
func (eg *EG) EarliestArrival(src, start int) (arrival []int, pred []Hop, err error) {
	if err := eg.check(src); err != nil {
		return nil, nil, err
	}
	arrival = make([]int, eg.n)
	pred = make([]Hop, eg.n)
	for i := range arrival {
		arrival[i] = Infinity
		pred[i] = Hop{From: -1, To: -1, Time: -1}
	}
	arrival[src] = start
	pq := &arrHeap{{node: src, t: start}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(arrItem)
		if it.t > arrival[it.node] {
			continue
		}
		for _, e := range eg.adj[it.node] {
			// First label >= current arrival time; transmission is
			// instantaneous so we arrive at exactly that label.
			pos := sort.SearchInts(e.labels, it.t)
			if pos == len(e.labels) {
				continue
			}
			t := e.labels[pos]
			if t < arrival[e.to] {
				arrival[e.to] = t
				pred[e.to] = Hop{From: it.node, To: e.to, Time: t}
				heap.Push(pq, arrItem{node: e.to, t: t})
			}
		}
	}
	return arrival, pred, nil
}

// EarliestCompletionJourney returns a journey from src to dst with the
// earliest completion time among those starting at or after start, or an
// error if none exists.
func (eg *EG) EarliestCompletionJourney(src, dst, start int) (Journey, error) {
	if err := eg.check(dst); err != nil {
		return nil, err
	}
	arrival, pred, err := eg.EarliestArrival(src, start)
	if err != nil {
		return nil, err
	}
	if arrival[dst] == Infinity {
		return nil, fmt.Errorf("temporal: %d not connected to %d at time %d", src, dst, start)
	}
	if src == dst {
		return Journey{}, nil
	}
	var rev Journey
	for v := dst; v != src; v = pred[v].From {
		rev = append(rev, pred[v])
	}
	j := make(Journey, len(rev))
	for i := range rev {
		j[i] = rev[len(rev)-1-i]
	}
	return j, nil
}

// ConnectedAt reports whether src is connected to dst at time unit start:
// a journey exists whose first contact label is >= start (§II-B).
func (eg *EG) ConnectedAt(src, dst, start int) bool {
	if src == dst {
		return true
	}
	arrival, _, err := eg.EarliestArrival(src, start)
	if err != nil || dst < 0 || dst >= eg.n {
		return false
	}
	return arrival[dst] != Infinity
}

// MinHopJourney returns a journey from src to dst starting at or after
// start with the minimum number of hops (the paper's "minimum hop path").
func (eg *EG) MinHopJourney(src, dst, start int) (Journey, error) {
	if err := eg.check(src); err != nil {
		return nil, err
	}
	if err := eg.check(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return Journey{}, nil
	}
	// Layered DP: best[v] = earliest arrival at v over journeys of <= k
	// hops. A journey with fewer hops may be forced to arrive later, so hop
	// count is the outer loop; layers[k][v] records the hop that improved v
	// at layer k for reconstruction.
	best := make([]int, eg.n)
	for i := range best {
		best[i] = Infinity
	}
	best[src] = start
	var layers []map[int]Hop
	for len(layers) < eg.n && best[dst] == Infinity {
		next := append([]int(nil), best...)
		layer := make(map[int]Hop)
		for u := 0; u < eg.n; u++ {
			if best[u] == Infinity {
				continue
			}
			for _, e := range eg.adj[u] {
				pos := sort.SearchInts(e.labels, best[u])
				if pos == len(e.labels) {
					continue
				}
				if t := e.labels[pos]; t < next[e.to] {
					next[e.to] = t
					layer[e.to] = Hop{From: u, To: e.to, Time: t}
				}
			}
		}
		if len(layer) == 0 {
			break
		}
		layers = append(layers, layer)
		best = next
	}
	if best[dst] == Infinity {
		return nil, fmt.Errorf("temporal: %d not connected to %d at time %d", src, dst, start)
	}
	// Walk back: the hop into v lives in the last layer (< current) where v
	// improved; each step strictly decreases the layer index, so the result
	// has at most len(layers) = minhop hops.
	var rev Journey
	v, k := dst, len(layers)-1
	for v != src {
		for k >= 0 {
			if _, ok := layers[k][v]; ok {
				break
			}
			k--
		}
		if k < 0 {
			return nil, errors.New("temporal: internal reconstruction failure")
		}
		h := layers[k][v]
		rev = append(rev, h)
		v = h.From
		k--
	}
	j := make(Journey, len(rev))
	for i := range rev {
		j[i] = rev[len(rev)-1-i]
	}
	return j, nil
}

// FastestJourney returns a journey from src to dst minimizing the span
// between its first and last contact, considering journeys starting at any
// time >= start (the paper's "fastest path").
func (eg *EG) FastestJourney(src, dst, start int) (Journey, error) {
	if err := eg.check(src); err != nil {
		return nil, err
	}
	if err := eg.check(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return Journey{}, nil
	}
	// Enumerate candidate departure times: the labels on src's incident
	// edges (a fastest journey departs exactly at its first contact).
	departures := map[int]bool{}
	for _, e := range eg.adj[src] {
		for _, t := range e.labels {
			if t >= start {
				departures[t] = true
			}
		}
	}
	if len(departures) == 0 {
		return nil, fmt.Errorf("temporal: %d has no departures after %d", src, start)
	}
	times := make([]int, 0, len(departures))
	for t := range departures {
		times = append(times, t)
	}
	sort.Ints(times)
	var (
		bestJourney Journey
		bestSpan    = Infinity
	)
	for _, t := range times {
		j, err := eg.EarliestCompletionJourney(src, dst, t)
		if err != nil {
			continue
		}
		if len(j) == 0 {
			continue
		}
		// Only count journeys that truly depart at t (first hop at >= t is
		// guaranteed; the span is measured from the actual first contact).
		span := j.Span()
		if span < bestSpan {
			bestSpan = span
			bestJourney = j
		}
	}
	if bestJourney == nil {
		return nil, fmt.Errorf("temporal: %d not connected to %d at time %d", src, dst, start)
	}
	return bestJourney, nil
}

// FloodingTime returns the earliest time by which a message originating at
// src at time start reaches every node (the paper's dynamic diameter from
// one source), or an error if some node is never reached.
func (eg *EG) FloodingTime(src, start int) (int, error) {
	arrival, _, err := eg.EarliestArrival(src, start)
	if err != nil {
		return 0, err
	}
	worst := start
	for v, t := range arrival {
		if t == Infinity {
			return 0, fmt.Errorf("temporal: node %d never reached from %d", v, src)
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// DynamicDiameter returns the maximum flooding completion time over all
// sources starting at time start — the paper's extension of diameter to
// time-evolving graphs.
func (eg *EG) DynamicDiameter(start int) (int, error) {
	worst := start
	for src := 0; src < eg.n; src++ {
		ft, err := eg.FloodingTime(src, start)
		if err != nil {
			return 0, err
		}
		if ft > worst {
			worst = ft
		}
	}
	return worst, nil
}

// MinCostJourney returns a journey from src to dst (starting at or after
// start) minimizing total contact weight — the weighted time-evolving graph
// extension of §II-B. Weights must be non-negative.
func (eg *EG) MinCostJourney(src, dst, start int) (Journey, float64, error) {
	if err := eg.check(src); err != nil {
		return nil, 0, err
	}
	if err := eg.check(dst); err != nil {
		return nil, 0, err
	}
	if src == dst {
		return Journey{}, 0, nil
	}
	// Dijkstra over states (node, earliest time usable). For each node we
	// keep the Pareto frontier of (cost, time): a state is dominated if
	// another has both lower-or-equal cost and time.
	type state struct {
		node int
		t    int
	}
	type labelled struct {
		cost float64
		t    int
		prev state
		hop  Hop
	}
	frontier := make(map[state]labelled)
	pq := &costHeap{{node: src, t: start, cost: 0}}
	startState := state{src, start}
	frontier[startState] = labelled{cost: 0, t: start, prev: state{-1, -1}}
	var (
		bestEnd  state
		bestCost = math.Inf(1)
	)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(costItem)
		st := state{it.node, it.t}
		if l, ok := frontier[st]; !ok || it.cost > l.cost {
			continue
		}
		if it.node == dst && it.cost < bestCost {
			bestCost = it.cost
			bestEnd = st
		}
		for _, e := range eg.adj[it.node] {
			pos := sort.SearchInts(e.labels, it.t)
			for ; pos < len(e.labels); pos++ {
				t := e.labels[pos]
				w := e.weight[pos]
				ns := state{e.to, t}
				nc := it.cost + w
				if l, ok := frontier[ns]; ok && l.cost <= nc {
					continue
				}
				frontier[ns] = labelled{cost: nc, t: t, prev: st, hop: Hop{From: it.node, To: e.to, Time: t}}
				heap.Push(pq, costItem{node: e.to, t: t, cost: nc})
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, 0, fmt.Errorf("temporal: %d not connected to %d at time %d", src, dst, start)
	}
	var rev Journey
	for st := bestEnd; ; {
		l := frontier[st]
		if l.prev.node == -1 {
			break
		}
		rev = append(rev, l.hop)
		st = l.prev
	}
	j := make(Journey, len(rev))
	for i := range rev {
		j[i] = rev[len(rev)-1-i]
	}
	return j, bestCost, nil
}

type arrItem struct {
	node, t int
}

type arrHeap []arrItem

func (h arrHeap) Len() int            { return len(h) }
func (h arrHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h arrHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrHeap) Push(x interface{}) { *h = append(*h, x.(arrItem)) }
func (h *arrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type costItem struct {
	node, t int
	cost    float64
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
