package temporal_test

import (
	"fmt"

	"structura/internal/temporal"
)

// The paper's Fig. 2: ask the three §II-B path questions about A and C.
func ExampleEG_EarliestCompletionJourney() {
	eg := temporal.Fig2EG() // A=0, B=1, C=2, D=3

	j, err := eg.EarliestCompletionJourney(0, 2, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, hop := range j {
		fmt.Printf("%d -%d-> %d\n", hop.From, hop.Time, hop.To)
	}
	fmt.Println("completion:", j.Completion())
	// Output:
	// 0 -4-> 1
	// 1 -5-> 2
	// completion: 5
}

func ExampleEG_ConnectedAt() {
	eg := temporal.Fig2EG()
	for start := 0; start <= 5; start++ {
		fmt.Printf("start %d: %v\n", start, eg.ConnectedAt(0, 2, start))
	}
	// Output:
	// start 0: true
	// start 1: true
	// start 2: true
	// start 3: true
	// start 4: true
	// start 5: false
}

func ExampleEG_FastestJourney() {
	eg := temporal.Fig2EG()
	j, err := eg.FastestJourney(0, 2, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("span:", j.Span(), "hops:", j.Hops())
	// Output:
	// span: 1 hops: 2
}
