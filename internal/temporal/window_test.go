package temporal

import (
	"errors"
	"os"
	"testing"

	"structura/internal/graph"
	"structura/internal/wal"
)

// windowStore builds a small WAL history whose validity intervals are easy
// to enumerate by hand (batch-sequence time):
//
//	(0,1) w=2   [0, 2)   seeded in the snapshot, removed at batch 2
//	(2,3) w=1   [1, 3)   added at batch 1, reweighted at batch 3
//	(2,3) w=5   [3, ∞)   the reweighted interval, open at end of log
//	(4,5) w=1   [4, ∞)   added at batch 4, open at end of log
func windowStore(t *testing.T, opts wal.Options) *wal.MemFS {
	t.Helper()
	fsys := wal.NewMemFS()
	opts.FS = fsys
	seed := graph.New(6)
	if err := seed.AddWeightedEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Create("d", seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]wal.Record{
		{{Type: wal.TAddEdge, U: 2, V: 3, Weight: 1}},
		{{Type: wal.TRemoveEdge, U: 0, V: 1}},
		{{Type: wal.TWeight, U: 2, V: 3, Weight: 5}},
		{{Type: wal.TAddEdge, U: 4, V: 5, Weight: 1}},
	}
	for i, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatalf("append batch %d: %v", i+1, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return fsys
}

// weightAt returns the contact weight of (u,v) at time t, or 0 when no
// contact covers t.
func weightAt(t *testing.T, eg *EG, u, v, at int) float64 {
	t.Helper()
	w, err := eg.Weight(u, v, at)
	if err != nil {
		return 0
	}
	return w
}

func assertContacts(t *testing.T, eg *EG, u, v int, want []float64) {
	t.Helper()
	if len(want) != eg.Horizon() {
		t.Fatalf("want slice covers %d time units, horizon is %d", len(want), eg.Horizon())
	}
	for at, w := range want {
		if got := weightAt(t, eg, u, v, at); got != w {
			t.Errorf("(%d,%d) at t=%d: weight %v, want %v", u, v, at, got, w)
		}
	}
}

func TestLoadWindowValidityIntervals(t *testing.T) {
	fsys := windowStore(t, wal.Options{CompactEvery: -1})

	// The full history: every interval lands exactly where the log says.
	eg, err := LoadWindowFS(fsys, "d", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if eg.N() != 6 || eg.Horizon() != 6 {
		t.Fatalf("full window: n=%d horizon=%d, want 6 and 6", eg.N(), eg.Horizon())
	}
	assertContacts(t, eg, 0, 1, []float64{2, 2, 0, 0, 0, 0}) // snapshot edge, removed at 2
	assertContacts(t, eg, 2, 3, []float64{0, 1, 1, 5, 5, 5}) // reweight splits the interval at 3
	assertContacts(t, eg, 4, 5, []float64{0, 0, 0, 0, 1, 1}) // open edge covers the tail

	// A sub-window shifts batch time to window-relative time and clips the
	// intervals crossing its edges.
	sub, err := LoadWindowFS(fsys, "d", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Horizon() != 3 {
		t.Fatalf("sub window horizon %d, want 3", sub.Horizon())
	}
	assertContacts(t, sub, 0, 1, []float64{0, 0, 0}) // removed exactly at the window start
	assertContacts(t, sub, 2, 3, []float64{1, 5, 5})
	assertContacts(t, sub, 4, 5, []float64{0, 0, 1})

	// A window ending mid-history stops the range scan at its bound: the
	// reweight at batch 3 and the add at batch 4 never surface.
	head, err := LoadWindowFS(fsys, "d", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertContacts(t, head, 0, 1, []float64{2, 2})
	assertContacts(t, head, 2, 3, []float64{0, 1})
	assertContacts(t, head, 4, 5, []float64{0, 0})

	// Degenerate but legal: an empty window has nothing in it.
	empty, err := LoadWindowFS(fsys, "d", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if empty.ContactCount() != 0 {
		t.Fatalf("empty window has %d contacts", empty.ContactCount())
	}

	if _, err := LoadWindowFS(fsys, "d", 4, 1); err == nil {
		t.Fatal("inverted window loaded successfully")
	}
	if _, err := LoadWindowFS(fsys, "nowhere", 0, 4); !errors.Is(err, wal.ErrNoStore) {
		t.Fatalf("missing store: %v, want ErrNoStore", err)
	}
}

// TestLoadWindowCompactedStore pins the documented compaction semantics:
// snapshot edges are valid from the snapshot's batch seq, because the
// history before it is physically gone. Re-opening the store compacts it
// (restart-as-compaction), so the same window over the same directory now
// collapses each surviving edge's interval to [snapSeq, ...).
func TestLoadWindowCompactedStore(t *testing.T) {
	fsys := windowStore(t, wal.Options{CompactEvery: -1})

	l, rec, err := wal.Open("d", wal.Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 4 {
		t.Fatalf("recovered seq %d, want 4", rec.Seq)
	}
	// Open rewrote the store as a fresh generation: snapshot at batch 4,
	// empty log. Append one more batch so the window sees both layers.
	if _, err := l.Append([]wal.Record{{Type: wal.TAddEdge, U: 0, V: 2, Weight: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	eg, err := LoadWindowFS(fsys, "d", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// (2,3) lived on [1,3) at w=1 before compaction; that history is gone.
	// Both survivors now start at the snapshot seq, the new add at batch 5.
	assertContacts(t, eg, 0, 1, []float64{0, 0, 0, 0, 0, 0}) // removed pre-snapshot: absent
	assertContacts(t, eg, 2, 3, []float64{0, 0, 0, 0, 5, 5})
	assertContacts(t, eg, 4, 5, []float64{0, 0, 0, 0, 1, 1})
	assertContacts(t, eg, 0, 2, []float64{0, 0, 0, 0, 0, 7})

	// A window that predates the snapshot entirely is empty — the store
	// can no longer answer for compacted-away history.
	old, err := LoadWindowFS(fsys, "d", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if old.ContactCount() != 0 {
		t.Fatalf("pre-snapshot window has %d contacts", old.ContactCount())
	}
}

// TestLoadWindowInlineCompaction drives compaction through Append (the
// steady-state path, not restart) and checks windows keep working across
// the generation swap.
func TestLoadWindowInlineCompaction(t *testing.T) {
	fsys := wal.NewMemFS()
	l, err := wal.Create("d", graph.New(4), wal.Options{FS: fsys, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Batches 1..5: grow a path 0-1-2-3, then drop its middle edge. The
	// CompactEvery=2 policy snapshots after batches 2 and 4.
	batches := [][]wal.Record{
		{{Type: wal.TAddEdge, U: 0, V: 1, Weight: 1}},
		{{Type: wal.TAddEdge, U: 1, V: 2, Weight: 1}},
		{{Type: wal.TAddEdge, U: 2, V: 3, Weight: 1}},
		{{Type: wal.TRemoveEdge, U: 1, V: 2}},
		{{Type: wal.TWeight, U: 0, V: 1, Weight: 9}},
	}
	for i, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatalf("append batch %d: %v", i+1, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The live snapshot is at batch 4, so intervals before it are gone and
	// the log suffix holds only batch 5.
	eg, err := LoadWindowFS(fsys, "d", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	assertContacts(t, eg, 0, 1, []float64{1, 9, 9}) // snapshot weight, then batch-5 reweight
	assertContacts(t, eg, 2, 3, []float64{1, 1, 1})
	assertContacts(t, eg, 1, 2, []float64{0, 0, 0}) // removed before the snapshot
}

// TestLoadWindowRealFS exercises the nil-FS path of LoadWindow against an
// on-disk store, as an external analysis process would use it.
func TestLoadWindowRealFS(t *testing.T) {
	dir := t.TempDir() + "/store"
	seed := graph.New(3)
	l, err := wal.Create(dir, seed, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]wal.Record{{Type: wal.TAddEdge, U: 0, V: 1, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]wal.Record{{Type: wal.TAddEdge, U: 1, V: 2, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	eg, err := LoadWindow(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertContacts(t, eg, 0, 1, []float64{0, 4, 4})
	assertContacts(t, eg, 1, 2, []float64{0, 0, 2})

	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
