package temporal

import (
	"math/rand"
	"testing"
)

const (
	nodeA = 0
	nodeB = 1
	nodeC = 2
	nodeD = 3
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 5); err == nil {
		t.Error("negative n should error")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("negative horizon should error")
	}
	eg, err := New(3, 10)
	if err != nil || eg.N() != 3 || eg.Horizon() != 10 {
		t.Fatalf("New = %v, %v", eg, err)
	}
}

func TestAddContactValidation(t *testing.T) {
	eg, _ := New(3, 5)
	if err := eg.AddContact(0, 3, 1); err == nil {
		t.Error("out-of-range node should error")
	}
	if err := eg.AddContact(0, 0, 1); err == nil {
		t.Error("self-contact should error")
	}
	if err := eg.AddContact(0, 1, 5); err == nil {
		t.Error("time beyond horizon should error")
	}
	if err := eg.AddContact(0, 1, -1); err == nil {
		t.Error("negative time should error")
	}
}

func TestContactRoundTrip(t *testing.T) {
	eg, _ := New(3, 10)
	if err := eg.AddContact(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := eg.AddContact(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	labels := eg.Labels(0, 1)
	if len(labels) != 2 || labels[0] != 1 || labels[1] != 3 {
		t.Errorf("labels = %v, want [1 3] sorted", labels)
	}
	if got := eg.Labels(1, 0); len(got) != 2 {
		t.Error("labels must be symmetric")
	}
	if eg.ContactCount() != 2 {
		t.Errorf("ContactCount = %d, want 2", eg.ContactCount())
	}
	// Duplicate add is idempotent.
	if err := eg.AddContact(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if eg.ContactCount() != 2 {
		t.Error("duplicate contact changed count")
	}
}

func TestWeights(t *testing.T) {
	eg, _ := New(2, 5)
	if err := eg.AddWeightedContact(0, 1, 2, 3.5); err != nil {
		t.Fatal(err)
	}
	w, err := eg.Weight(0, 1, 2)
	if err != nil || w != 3.5 {
		t.Errorf("Weight = %v, %v", w, err)
	}
	if _, err := eg.Weight(0, 1, 3); err == nil {
		t.Error("missing contact weight should error")
	}
	// Re-add updates weight.
	_ = eg.AddWeightedContact(0, 1, 2, 9)
	if w, _ := eg.Weight(0, 1, 2); w != 9 {
		t.Errorf("updated weight = %v, want 9", w)
	}
}

func TestRemoveContactAndEdge(t *testing.T) {
	eg, _ := New(3, 10)
	_ = eg.AddContact(0, 1, 2)
	_ = eg.AddContact(0, 1, 4)
	if !eg.RemoveContact(0, 1, 2) {
		t.Error("RemoveContact should report true")
	}
	if eg.RemoveContact(0, 1, 2) {
		t.Error("double-remove should report false")
	}
	if got := eg.Labels(0, 1); len(got) != 1 || got[0] != 4 {
		t.Errorf("labels = %v, want [4]", got)
	}
	if !eg.RemoveEdge(0, 1) {
		t.Error("RemoveEdge should report true")
	}
	if eg.Labels(0, 1) != nil {
		t.Error("edge should be fully gone")
	}
	if len(eg.Neighbors(0)) != 0 {
		t.Error("neighbor entry should be dropped when labels empty")
	}
}

func TestRemoveNode(t *testing.T) {
	eg := Fig2EG()
	eg.RemoveNode(nodeD)
	if len(eg.Neighbors(nodeD)) != 0 {
		t.Error("D should have no contacts after removal")
	}
	if eg.Labels(nodeA, nodeD) != nil {
		t.Error("A-D contacts should be gone")
	}
	if eg.Labels(nodeA, nodeB) == nil {
		t.Error("A-B must survive")
	}
}

func TestAddPeriodicContacts(t *testing.T) {
	eg, _ := New(2, 12)
	if err := eg.AddPeriodicContacts(0, 1, 1, 3); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 7, 10}
	got := eg.Labels(0, 1)
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
	if err := eg.AddPeriodicContacts(0, 1, 0, 0); err == nil {
		t.Error("zero period should error")
	}
	if err := eg.AddPeriodicContacts(0, 1, -1, 2); err == nil {
		t.Error("negative phase should error")
	}
}

func TestSnapshotAndFootprint(t *testing.T) {
	eg := Fig2EG()
	g1 := eg.Snapshot(1)
	if !g1.HasEdge(nodeA, nodeB) || !g1.HasEdge(nodeA, nodeD) {
		t.Error("snapshot t=1 should have A-B and A-D")
	}
	if g1.HasEdge(nodeB, nodeC) {
		t.Error("snapshot t=1 should not have B-C")
	}
	fp := eg.Footprint()
	if fp.M() != 5 {
		t.Errorf("footprint M = %d, want 5 edges", fp.M())
	}
}

func TestClone(t *testing.T) {
	eg := Fig2EG()
	c := eg.Clone()
	c.RemoveEdge(nodeA, nodeD)
	if eg.Labels(nodeA, nodeD) == nil {
		t.Error("clone mutation leaked")
	}
}

// --- Fig. 2 paper-fact tests -------------------------------------------

func TestFig2PathA4B5C(t *testing.T) {
	eg := Fig2EG()
	// "path A -4-> B -5-> C exists"
	j := Journey{{From: nodeA, To: nodeB, Time: 4}, {From: nodeB, To: nodeC, Time: 5}}
	if err := eg.Validate(j, nodeA, nodeC, 0); err != nil {
		t.Fatalf("paper journey invalid: %v", err)
	}
}

func TestFig2PathA3D6C(t *testing.T) {
	eg := Fig2EG()
	// "A -3-> D -6-> C" from the trimming discussion.
	j := Journey{{From: nodeA, To: nodeD, Time: 3}, {From: nodeD, To: nodeC, Time: 6}}
	if err := eg.Validate(j, nodeA, nodeC, 0); err != nil {
		t.Fatalf("paper journey invalid: %v", err)
	}
}

func TestFig2ConnectivityWindow(t *testing.T) {
	eg := Fig2EG()
	// "A is connected to C at starting time units 0, 1, 2, 3, and 4".
	for start := 0; start <= 4; start++ {
		if !eg.ConnectedAt(nodeA, nodeC, start) {
			t.Errorf("A should be connected to C at start %d", start)
		}
	}
	for start := 5; start < eg.Horizon(); start++ {
		if eg.ConnectedAt(nodeA, nodeC, start) {
			t.Errorf("A should NOT be connected to C at start %d", start)
		}
	}
}

func TestFig2NeverConnectedInSnapshot(t *testing.T) {
	eg := Fig2EG()
	// "A and C in Fig. 2 are not connected at any particular time unit.
	// Hence, the network is not connected at any given time."
	for tu := 0; tu < eg.Horizon(); tu++ {
		snap := eg.Snapshot(tu)
		dist, _, _ := snap.BFS(nodeA)
		if dist[nodeC] != -1 {
			t.Errorf("A and C connected in snapshot %d", tu)
		}
		if snap.Connected() {
			t.Errorf("network should not be connected at time %d", tu)
		}
	}
}

func TestFig2EdgeLabelCycles(t *testing.T) {
	eg := Fig2EG()
	// "(B,D) and (C,D) have a cycle of 6, (A,D) has 2, and (A,B) and (B,C)
	// have 3": consecutive displayed labels differ by the cycle.
	cases := []struct {
		u, v, cycle int
	}{
		{nodeC, nodeD, 6},
		{nodeA, nodeD, 2},
		{nodeA, nodeB, 3},
		{nodeB, nodeC, 3},
	}
	for _, tc := range cases {
		labels := eg.Labels(tc.u, tc.v)
		if len(labels) < 2 {
			t.Fatalf("edge (%d,%d) needs >= 2 labels to show its cycle", tc.u, tc.v)
		}
		for i := 1; i < len(labels); i++ {
			if labels[i]-labels[i-1] != tc.cycle {
				t.Errorf("edge (%d,%d) labels %v do not cycle by %d", tc.u, tc.v, labels, tc.cycle)
			}
		}
	}
	if len(eg.Labels(nodeB, nodeD)) == 0 {
		t.Error("(B,D) must exist")
	}
}

func TestFig2EarliestCompletion(t *testing.T) {
	eg := Fig2EG()
	tests := []struct {
		start, want int
	}{
		{0, 2}, // A-1->B-2->C
		{1, 2},
		{2, 5}, // A-4->B-5->C
		{3, 5},
		{4, 5},
	}
	for _, tc := range tests {
		j, err := eg.EarliestCompletionJourney(nodeA, nodeC, tc.start)
		if err != nil {
			t.Fatalf("start %d: %v", tc.start, err)
		}
		if j.Completion() != tc.want {
			t.Errorf("start %d: completion = %d, want %d", tc.start, j.Completion(), tc.want)
		}
		if err := eg.Validate(j, nodeA, nodeC, tc.start); err != nil {
			t.Errorf("start %d: invalid journey: %v", tc.start, err)
		}
	}
}

func TestFig2MinHop(t *testing.T) {
	eg := Fig2EG()
	j, err := eg.MinHopJourney(nodeA, nodeC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Hops() != 2 {
		t.Errorf("min hops A->C = %d, want 2", j.Hops())
	}
	if err := eg.Validate(j, nodeA, nodeC, 0); err != nil {
		t.Errorf("invalid journey: %v", err)
	}
	// Direct neighbor: 1 hop.
	j2, err := eg.MinHopJourney(nodeA, nodeB, 0)
	if err != nil || j2.Hops() != 1 {
		t.Errorf("min hops A->B = %d, %v; want 1", j2.Hops(), err)
	}
}

func TestFig2Fastest(t *testing.T) {
	eg := Fig2EG()
	j, err := eg.FastestJourney(nodeA, nodeC, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A-1->B-2->C (span 1) and A-4->B-5->C (span 1) tie; both beat
	// A-1->D-6->C (span 5) and A-3->D-6->C (span 3).
	if j.Span() != 1 {
		t.Errorf("fastest span = %d, want 1 (journey %v)", j.Span(), j)
	}
	if err := eg.Validate(j, nodeA, nodeC, 0); err != nil {
		t.Errorf("invalid journey: %v", err)
	}
}

func TestFig2FloodingAndDiameter(t *testing.T) {
	eg := Fig2EG()
	// From A at t=0: B by 1, D by 1, C by 2.
	ft, err := eg.FloodingTime(nodeA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ft != 2 {
		t.Errorf("flooding time from A = %d, want 2", ft)
	}
	dd, err := eg.DynamicDiameter(0)
	if err != nil {
		t.Fatal(err)
	}
	// From C at t=0: C-0->D misses, next C contact t=2 (B), then B-4->A...
	// the diameter must be >= flooding from A and finite.
	if dd < ft || dd >= eg.Horizon() {
		t.Errorf("dynamic diameter = %d, want in [%d, %d)", dd, ft, eg.Horizon())
	}
}

func TestFig2DynamicDiameterUnreachable(t *testing.T) {
	eg := Fig2EG()
	// After t=5 start, A can no longer reach C.
	if _, err := eg.DynamicDiameter(5); err == nil {
		t.Error("diameter at start 5 should error (disconnection)")
	}
}

// --- general algorithm tests -------------------------------------------

func TestEarliestArrivalWaitsForLabels(t *testing.T) {
	eg, _ := New(3, 20)
	_ = eg.AddContact(0, 1, 5)
	_ = eg.AddContact(1, 2, 3) // before message reaches 1: unusable
	_ = eg.AddContact(1, 2, 9)
	arr, _, err := eg.EarliestArrival(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if arr[1] != 5 || arr[2] != 9 {
		t.Errorf("arrivals = %v, want [0 5 9]", arr)
	}
}

func TestEarliestArrivalStartFiltersPast(t *testing.T) {
	eg, _ := New(2, 20)
	_ = eg.AddContact(0, 1, 3)
	arr, _, _ := eg.EarliestArrival(0, 4)
	if arr[1] != Infinity {
		t.Errorf("past contact should be unusable, arr = %v", arr[1])
	}
}

func TestMinHopTradesTimeForHops(t *testing.T) {
	// 0-1-2 path completes at 2; direct 0->2 contact at 10.
	eg, _ := New(3, 20)
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(1, 2, 2)
	_ = eg.AddContact(0, 2, 10)
	early, err := eg.EarliestCompletionJourney(0, 2, 0)
	if err != nil || early.Completion() != 2 {
		t.Fatalf("earliest completion = %v, %v; want 2", early.Completion(), err)
	}
	minhop, err := eg.MinHopJourney(0, 2, 0)
	if err != nil || minhop.Hops() != 1 {
		t.Fatalf("min hops = %d, %v; want 1 (the late direct contact)", minhop.Hops(), err)
	}
	if minhop.Completion() != 10 {
		t.Errorf("min-hop completion = %d, want 10", minhop.Completion())
	}
}

func TestFastestPrefersLaterTighterWindow(t *testing.T) {
	// Starting at 0: journey 0-0->1-5->2 has span 5; waiting for
	// 0-7->1-8->2 has span 1.
	eg, _ := New(3, 20)
	_ = eg.AddContact(0, 1, 0)
	_ = eg.AddContact(1, 2, 5)
	_ = eg.AddContact(0, 1, 7)
	_ = eg.AddContact(1, 2, 8)
	j, err := eg.FastestJourney(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Span() != 1 {
		t.Errorf("fastest span = %d, want 1", j.Span())
	}
	if j[0].Time != 7 {
		t.Errorf("fastest journey should depart at 7, got %v", j)
	}
}

func TestSelfJourneys(t *testing.T) {
	eg := Fig2EG()
	j, err := eg.EarliestCompletionJourney(nodeA, nodeA, 3)
	if err != nil || len(j) != 0 {
		t.Errorf("self journey = %v, %v", j, err)
	}
	if !eg.ConnectedAt(nodeA, nodeA, 6) {
		t.Error("self connectivity must hold")
	}
	j2, err := eg.MinHopJourney(nodeB, nodeB, 0)
	if err != nil || j2.Hops() != 0 {
		t.Errorf("self min-hop = %v, %v", j2, err)
	}
	j3, err := eg.FastestJourney(nodeC, nodeC, 0)
	if err != nil || j3.Span() != 0 {
		t.Errorf("self fastest = %v, %v", j3, err)
	}
}

func TestValidateRejections(t *testing.T) {
	eg := Fig2EG()
	cases := []struct {
		name            string
		j               Journey
		src, dst, start int
	}{
		{"empty for distinct", nil, nodeA, nodeC, 0},
		{"wrong src", Journey{{From: nodeB, To: nodeC, Time: 2}}, nodeA, nodeC, 0},
		{"wrong dst", Journey{{From: nodeA, To: nodeB, Time: 1}}, nodeA, nodeC, 0},
		{"decreasing times", Journey{
			{From: nodeA, To: nodeB, Time: 4},
			{From: nodeB, To: nodeC, Time: 2},
		}, nodeA, nodeC, 0},
		{"nonexistent contact", Journey{{From: nodeA, To: nodeB, Time: 2}}, nodeA, nodeB, 0},
		{"before start", Journey{{From: nodeA, To: nodeB, Time: 1}}, nodeA, nodeB, 3},
		{"disconnected hops", Journey{
			{From: nodeA, To: nodeB, Time: 1},
			{From: nodeD, To: nodeC, Time: 6},
		}, nodeA, nodeC, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := eg.Validate(tc.j, tc.src, tc.dst, tc.start); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestMinCostJourney(t *testing.T) {
	// Two temporal routes 0->2: expensive early direct vs cheap two-hop.
	eg, _ := New(3, 20)
	_ = eg.AddWeightedContact(0, 2, 1, 10)
	_ = eg.AddWeightedContact(0, 1, 2, 1)
	_ = eg.AddWeightedContact(1, 2, 3, 1)
	j, cost, err := eg.MinCostJourney(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("cost = %v, want 2", cost)
	}
	if len(j) != 2 {
		t.Errorf("journey = %v, want 2 hops", j)
	}
	if err := eg.Validate(j, 0, 2, 0); err != nil {
		t.Errorf("invalid journey: %v", err)
	}
	if _, _, err := eg.MinCostJourney(2, 0, 5); err == nil {
		t.Error("unreachable should error")
	}
	if j, cost, err := eg.MinCostJourney(1, 1, 0); err != nil || cost != 0 || len(j) != 0 {
		t.Error("self min-cost should be trivial")
	}
}

func TestMinCostRespectsTime(t *testing.T) {
	// The cheap edge is in the past once the message arrives: must pay.
	eg, _ := New(3, 20)
	_ = eg.AddWeightedContact(0, 1, 5, 1)
	_ = eg.AddWeightedContact(1, 2, 3, 1) // unusable: before arrival at 1
	_ = eg.AddWeightedContact(1, 2, 8, 4)
	j, cost, err := eg.MinCostJourney(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Errorf("cost = %v, want 5 (1 + 4)", cost)
	}
	if err := eg.Validate(j, 0, 2, 0); err != nil {
		t.Errorf("invalid journey: %v", err)
	}
}

// Random EGs: earliest arrival must match brute-force over all journeys of
// bounded length.
func TestEarliestArrivalAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(5)
		horizon := 8
		eg, _ := New(n, horizon)
		for k := 0; k < n*3; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = eg.AddContact(u, v, r.Intn(horizon))
			}
		}
		start := r.Intn(horizon)
		arr, _, err := eg.EarliestArrival(0, start)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteEarliest(eg, 0, start)
		for v := 0; v < n; v++ {
			if arr[v] != want[v] {
				t.Fatalf("trial %d node %d: arrival %d, brute %d", trial, v, arr[v], want[v])
			}
		}
	}
}

// bruteEarliest runs a simple time-stepped epidemic spread.
func bruteEarliest(eg *EG, src, start int) []int {
	arr := make([]int, eg.N())
	for i := range arr {
		arr[i] = Infinity
	}
	arr[src] = start
	for tu := start; tu < eg.Horizon(); tu++ {
		snap := eg.Snapshot(tu)
		// Within one time unit transmission is instantaneous, so flood the
		// snapshot's components.
		changed := true
		for changed {
			changed = false
			for _, e := range snap.Edges() {
				if arr[e.From] <= tu && arr[e.To] > tu {
					arr[e.To] = tu
					changed = true
				}
				if arr[e.To] <= tu && arr[e.From] > tu {
					arr[e.From] = tu
					changed = true
				}
			}
		}
	}
	return arr
}

// Property: min-hop journeys never have more hops than earliest-completion
// journeys, and earliest-completion journeys never complete later.
func TestOptimizationObjectivesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(4)
		eg, _ := New(n, 10)
		for k := 0; k < n*4; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = eg.AddContact(u, v, r.Intn(10))
			}
		}
		src, dst := 0, n-1
		ec, err1 := eg.EarliestCompletionJourney(src, dst, 0)
		mh, err2 := eg.MinHopJourney(src, dst, 0)
		fs, err3 := eg.FastestJourney(src, dst, 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("reachability disagreement: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if err3 != nil {
			t.Fatalf("fastest failed where earliest succeeded: %v", err3)
		}
		if mh.Hops() > ec.Hops() {
			t.Fatalf("min-hop %d > earliest-completion hops %d", mh.Hops(), ec.Hops())
		}
		if ec.Completion() > mh.Completion() {
			t.Fatalf("earliest completion %d > min-hop completion %d", ec.Completion(), mh.Completion())
		}
		if fs.Span() > ec.Span() {
			t.Fatalf("fastest span %d > earliest-completion span %d", fs.Span(), ec.Span())
		}
		for name, j := range map[string]Journey{"ec": ec, "mh": mh, "fs": fs} {
			if err := eg.Validate(j, src, dst, 0); err != nil {
				t.Fatalf("%s journey invalid: %v", name, err)
			}
		}
	}
}

func TestTimeConnected(t *testing.T) {
	// Fig. 2 is time-0-connected (carry-store-forward reaches everyone)
	// but not time-5-connected (A can no longer reach C).
	eg := Fig2EG()
	if !eg.TimeConnected(0) {
		t.Error("Fig. 2 must be time-0-connected")
	}
	if eg.TimeConnected(5) {
		t.Error("Fig. 2 must not be time-5-connected")
	}
	empty, _ := New(2, 3)
	if empty.TimeConnected(0) {
		t.Error("contactless EG is not time-connected")
	}
	single, _ := New(1, 3)
	if !single.TimeConnected(0) {
		t.Error("singleton is vacuously time-connected")
	}
}
