package temporal

import (
	"encoding/json"
	"testing"
)

func TestEGJSONRoundTrip(t *testing.T) {
	eg := Fig2EG()
	_ = eg.AddWeightedContact(0, 1, 2, 0.5)
	data, err := json.Marshal(eg)
	if err != nil {
		t.Fatal(err)
	}
	var back EG
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != eg.N() || back.Horizon() != eg.Horizon() || back.ContactCount() != eg.ContactCount() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			back.N(), back.Horizon(), back.ContactCount(),
			eg.N(), eg.Horizon(), eg.ContactCount())
	}
	for u := 0; u < eg.N(); u++ {
		for _, v := range eg.Neighbors(u) {
			l1, l2 := eg.Labels(u, v), back.Labels(u, v)
			if len(l1) != len(l2) {
				t.Fatalf("labels (%d,%d) differ", u, v)
			}
			for i := range l1 {
				if l1[i] != l2[i] {
					t.Fatalf("labels (%d,%d) differ at %d", u, v, i)
				}
			}
		}
	}
	if w, err := back.Weight(0, 1, 2); err != nil || w != 0.5 {
		t.Errorf("weight lost: %v, %v", w, err)
	}
	// Semantics preserved: same earliest arrivals.
	a1, _, _ := eg.EarliestArrival(0, 0)
	a2, _, _ := back.EarliestArrival(0, 0)
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatalf("arrival[%d] changed: %d vs %d", v, a1[v], a2[v])
		}
	}
}

func TestEGJSONRejectsGarbage(t *testing.T) {
	var eg EG
	if err := json.Unmarshal([]byte(`{"nodes": -1, "horizon": 3}`), &eg); err == nil {
		t.Error("negative nodes should error")
	}
	if err := json.Unmarshal([]byte(`{"nodes": 2, "horizon": 3, "contacts": [{"U":0,"V":1,"T":9}]}`), &eg); err == nil {
		t.Error("out-of-horizon contact should error")
	}
	if err := json.Unmarshal([]byte(`{`), &eg); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestEGJSONTracegenCompatibility(t *testing.T) {
	// The schema matches cmd/tracegen output: uppercase U/V/T keys.
	doc := []byte(`{"nodes": 3, "horizon": 5, "contacts": [{"U":0,"V":2,"T":1},{"U":1,"V":2,"T":3}]}`)
	var eg EG
	if err := json.Unmarshal(doc, &eg); err != nil {
		t.Fatal(err)
	}
	if eg.ContactCount() != 2 || len(eg.Labels(0, 2)) != 1 {
		t.Fatalf("decoded %d contacts", eg.ContactCount())
	}
	arr, _, _ := eg.EarliestArrival(0, 0)
	if arr[1] != 3 {
		t.Errorf("arrival at 1 = %d, want 3 (0-1->2-3->1)", arr[1])
	}
}
