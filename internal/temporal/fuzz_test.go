package temporal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzEGJSONRoundTrip throws arbitrary documents at the EG JSON decoder and
// checks the normalize-then-roundtrip contract: any input the decoder
// accepts must re-encode and re-decode to the identical encoding (the first
// decode may normalize — e.g. zero weights become 1, duplicate contacts
// collapse — but after one pass the representation is a fixed point).
func FuzzEGJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"nodes":3,"horizon":4,"contacts":[{"U":0,"V":1,"T":2}]}`))
	f.Add([]byte(`{"nodes":2,"horizon":8,"contacts":[{"U":0,"V":1,"T":0,"W":2.5},{"U":1,"V":0,"T":0,"W":3}]}`))
	f.Add([]byte(`{"nodes":0,"horizon":0}`))
	f.Add([]byte(`{"nodes":4,"horizon":1,"contacts":[{"U":3,"V":2,"T":0,"W":0}]}`))
	f.Add([]byte(`{"nodes":-1,"horizon":5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard the allocation the decoder performs from the header before
		// handing the document to UnmarshalJSON: absurd node counts are not
		// interesting inputs, just OOM.
		var header struct {
			Nodes   int `json:"nodes"`
			Horizon int `json:"horizon"`
		}
		if err := json.Unmarshal(data, &header); err != nil {
			_ = header // fall through: UnmarshalJSON must reject it too
		}
		if header.Nodes > 1<<12 || header.Horizon > 1<<20 {
			return
		}
		var eg EG
		if err := json.Unmarshal(data, &eg); err != nil {
			return // rejected inputs are fine; we only check accepted ones
		}
		first, err := json.Marshal(&eg)
		if err != nil {
			t.Fatalf("accepted document failed to re-encode: %v", err)
		}
		var back EG
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("self-produced encoding rejected: %v\n%s", err, first)
		}
		if back.N() != eg.N() || back.Horizon() != eg.Horizon() || back.ContactCount() != eg.ContactCount() {
			t.Fatalf("round trip changed shape: (%d,%d,%d) -> (%d,%d,%d)",
				eg.N(), eg.Horizon(), eg.ContactCount(), back.N(), back.Horizon(), back.ContactCount())
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding is not a fixed point:\n first=%s\nsecond=%s", first, second)
		}
	})
}
