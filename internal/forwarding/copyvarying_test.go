package forwarding

import (
	"testing"

	"structura/internal/stats"
	"structura/internal/temporal"
)

func copyVaryingRates() [][]float64 {
	// Node 3 is the destination; 1 is a strictly better relay than 0; 2 is
	// a mild relay (better than 0's direct rate, worse than 1).
	return [][]float64{
		{0, 0.5, 0.5, 0.02},
		{0.5, 0, 0.1, 0.5},
		{0.5, 0.1, 0, 0.1},
		{0.02, 0.5, 0.1, 0},
	}
}

func TestCopyVaryingSetsWidenWithTokens(t *testing.T) {
	p, err := NewCopyVarying(copyVaryingRates(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	// The paper's property: the multi-token set contains the last-copy set
	// (it may only widen with spare copies).
	for carrier := 0; carrier < 3; carrier++ {
		for peer := 0; peer < 4; peer++ {
			if peer == carrier {
				continue
			}
			if p.InSet(carrier, peer, 1) && !p.InSet(carrier, peer, 4) {
				t.Errorf("carrier %d: peer %d in last-copy set but not multi-copy set", carrier, peer)
			}
		}
	}
	// Node 1 with spare copies hands one even to the mild relay 2 (which
	// its single-copy optimal set excludes: delay[2] > delay[1]).
	if !p.InSet(1, 2, 4) {
		t.Error("multi-copy set should include any finite-delay peer")
	}
	if p.InSet(1, 2, 1) {
		t.Error("last-copy set must exclude the worse relay")
	}
	if p.InSet(-1, 0, 2) || p.InSet(0, 9, 2) {
		t.Error("out-of-range membership must be false")
	}
}

func TestCopyVaryingDelivery(t *testing.T) {
	// On exponential traces, copy-varying with L tokens should match or
	// beat the single-copy set policy in first-copy delivery time.
	r := stats.NewRand(1)
	rates := copyVaryingRates()
	p, err := NewCopyVarying(rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	sets, _, err := OptimalForwardingSets(rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	var cvWins, spWins, cvCopies int
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		eg, err := temporal.New(4, 400)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if rates[u][v] <= 0 {
					continue
				}
				tm := 0.0
				for {
					tm += stats.Exponential(r, rates[u][v])
					if int(tm) >= 400 {
						break
					}
					_ = eg.AddContact(u, v, int(tm))
				}
			}
		}
		msg := Message{Src: 0, Dst: 3}
		cv, err := Simulate(eg, msg, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := Simulate(eg, msg, SetPolicy{Sets: sets}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cv.Copies > 4 {
			t.Fatalf("copies %d exceeded the 4-token budget", cv.Copies)
		}
		if cv.Copies > cvCopies {
			cvCopies = cv.Copies
		}
		if cv.Delivered && (!sp.Delivered || cv.DeliveryTime < sp.DeliveryTime) {
			cvWins++
		}
		if sp.Delivered && (!cv.Delivered || sp.DeliveryTime < cv.DeliveryTime) {
			spWins++
		}
	}
	if cvWins <= spWins {
		t.Errorf("copy-varying should win first-copy delivery more often: cv %d vs single %d", cvWins, spWins)
	}
	if cvCopies < 2 {
		t.Error("copy-varying never replicated; the test is vacuous")
	}
}

func TestNewCopyVaryingErrors(t *testing.T) {
	if _, err := NewCopyVarying(copyVaryingRates(), 9); err == nil {
		t.Error("bad dst should error")
	}
	p := &CopyVarying{}
	if err := p.Validate(3); err == nil {
		t.Error("empty policy should fail validation")
	}
}
