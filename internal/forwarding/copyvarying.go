package forwarding

import (
	"errors"
	"math"
)

// CopyVarying realizes the §III-A observation that "in a multi-copy message
// delivery application, the forwarding set becomes copy-varying if the
// objective is to minimize the delivery time of the first copy": a carrier
// holding many copies can afford to hand some to merely-helpful relays,
// while a carrier down to its last copy only releases it to a member of
// the strictly-optimal forwarding set.
//
// Concretely: the objective E[min over copies of delivery time] can only
// improve by placing a spare copy anywhere that can eventually deliver, so
// with more than one token the effective set is every peer with a finite
// expected delay to the destination; with one token it collapses to the
// expected-delay-optimal set of [12] (which minimizes a single copy's
// expected delay) and the copy moves rather than replicates.
type CopyVarying struct {
	Sets  map[int]map[int]bool // optimal forwarding sets (last-copy discipline)
	Delay []float64            // expected delays toward the destination
}

// NewCopyVarying builds the policy from contact rates toward dst.
func NewCopyVarying(rates [][]float64, dst int) (*CopyVarying, error) {
	sets, delay, err := OptimalForwardingSets(rates, dst)
	if err != nil {
		return nil, err
	}
	return &CopyVarying{Sets: sets, Delay: delay}, nil
}

// Name implements Policy.
func (*CopyVarying) Name() string { return "copy-varying" }

// InSet reports whether peer belongs to carrier's forwarding set given the
// carrier's remaining token count — the copy-varying set itself.
func (p *CopyVarying) InSet(carrier, peer, tokens int) bool {
	if carrier < 0 || carrier >= len(p.Delay) || peer < 0 || peer >= len(p.Delay) {
		return false
	}
	if tokens > 1 {
		return !math.IsInf(p.Delay[peer], 1)
	}
	return p.Sets[carrier][peer]
}

// Decide implements Policy.
func (p *CopyVarying) Decide(env *Env, carrier, peer int) Decision {
	tokens := env.Tokens[carrier]
	if !p.InSet(carrier, peer, tokens) {
		return Decision{}
	}
	if tokens > 1 {
		return Decision{Replicate: true, TokensToPeer: tokens / 2}
	}
	// Last copy: strict set, and the copy moves.
	return Decision{Replicate: true, TokensToPeer: tokens, Drop: true}
}

// Validate checks the policy is usable for the given network size.
func (p *CopyVarying) Validate(n int) error {
	if len(p.Delay) != n {
		return errors.New("forwarding: delay vector size mismatch")
	}
	if p.Sets == nil {
		return errors.New("forwarding: nil forwarding sets")
	}
	return nil
}
