package forwarding

import (
	"testing"

	"structura/internal/stats"
	"structura/internal/temporal"
)

func benchTrace(b *testing.B) *temporal.EG {
	b.Helper()
	r := stats.NewRand(1)
	eg, err := temporal.New(60, 300)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 6000; k++ {
		u, v := r.Intn(60), r.Intn(60)
		if u != v {
			_ = eg.AddContact(u, v, r.Intn(300))
		}
	}
	return eg
}

func BenchmarkSimulateEpidemic(b *testing.B) {
	eg := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(eg, Message{Src: 0, Dst: 59}, Epidemic{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateSprayAndWait(b *testing.B) {
	eg := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(eg, Message{Src: 0, Dst: 59}, SprayAndWait{}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalForwardingSets(b *testing.B) {
	eg := benchTrace(b)
	rates := ContactRates(eg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalForwardingSets(rates, 59); err != nil {
			b.Fatal(err)
		}
	}
}
