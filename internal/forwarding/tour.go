package forwarding

import (
	"errors"
	"math"
)

// TOUR implements the time-sensitive utility-based single-copy policy of
// [13]: message utility decays linearly, U(t) = Beta * (Deadline - t) for
// t <= Deadline, and node i's inter-contact time with the destination is
// exponential with rate Lambda[i]. Handing the copy to a peer costs Cost
// units of utility, so a handoff pays off only while the expected-utility
// gain exceeds the cost — which makes the optimal forwarding set at a node
// shrink as the deadline approaches, the paper's headline property.
type TOUR struct {
	Lambda   []float64 // direct contact rate of each node with the destination
	Beta     float64   // utility decay per time unit
	Deadline int       // time at which utility reaches zero
	Cost     float64   // utility cost per handoff
}

// NewTOUR validates and builds a TOUR policy.
func NewTOUR(lambda []float64, beta float64, deadline int, cost float64) (*TOUR, error) {
	if len(lambda) == 0 {
		return nil, errors.New("forwarding: TOUR needs contact rates")
	}
	for _, l := range lambda {
		if l < 0 {
			return nil, errors.New("forwarding: negative contact rate")
		}
	}
	if beta <= 0 {
		return nil, errors.New("forwarding: Beta must be positive")
	}
	if deadline <= 0 {
		return nil, errors.New("forwarding: Deadline must be positive")
	}
	if cost < 0 {
		return nil, errors.New("forwarding: negative Cost")
	}
	return &TOUR{Lambda: lambda, Beta: beta, Deadline: deadline, Cost: cost}, nil
}

// Name implements Policy.
func (*TOUR) Name() string { return "tour" }

// ExpectedUtility returns E[max(0, U(arrival))] when a node with direct
// contact rate lambda carries the message with remaining lifetime tau:
//
//	E = Beta * (tau - (1 - exp(-lambda*tau)) / lambda)
//
// (0 when lambda == 0 or tau <= 0).
func (p *TOUR) ExpectedUtility(lambda, tau float64) float64 {
	if tau <= 0 || lambda <= 0 {
		return 0
	}
	return p.Beta * (tau - (1-math.Exp(-lambda*tau))/lambda)
}

// InSet reports whether peer belongs to carrier's optimal forwarding set at
// time t: the expected-utility gain from handing off exceeds the handoff
// cost.
func (p *TOUR) InSet(carrier, peer, t int) bool {
	tau := float64(p.Deadline - t)
	gain := p.ExpectedUtility(p.Lambda[peer], tau) - p.ExpectedUtility(p.Lambda[carrier], tau)
	return gain > p.Cost
}

// ForwardingSet returns carrier's forwarding set at time t (sorted node IDs).
func (p *TOUR) ForwardingSet(carrier, t int) []int {
	var out []int
	for peer := range p.Lambda {
		if peer != carrier && p.InSet(carrier, peer, t) {
			out = append(out, peer)
		}
	}
	return out
}

// Decide implements Policy: single-copy handoff to forwarding-set members.
func (p *TOUR) Decide(env *Env, carrier, peer int) Decision {
	if p.InSet(carrier, peer, env.Now) {
		return Decision{Replicate: true, Drop: true}
	}
	return Decision{}
}

// DeliveredUtility converts a delivery delay into realized utility.
func (p *TOUR) DeliveredUtility(deliveryTime int) float64 {
	u := p.Beta * float64(p.Deadline-deliveryTime)
	if u < 0 {
		return 0
	}
	return u
}
