package forwarding

import (
	"math"
	"testing"

	"structura/internal/mobility"
	"structura/internal/stats"
	"structura/internal/temporal"
)

func lineEG(t *testing.T) *temporal.EG {
	t.Helper()
	// 0 -1-> 1 -2-> 2 -3-> 3; plus a late direct 0-3 contact at 8.
	eg, err := temporal.New(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(1, 2, 2)
	_ = eg.AddContact(2, 3, 3)
	_ = eg.AddContact(0, 3, 8)
	return eg
}

func TestSimulateValidation(t *testing.T) {
	eg := lineEG(t)
	if _, err := Simulate(eg, Message{Src: -1, Dst: 3}, Epidemic{}, 0); err == nil {
		t.Error("bad src should error")
	}
	if _, err := Simulate(eg, Message{Src: 0, Dst: 3, Created: 99}, Epidemic{}, 0); err == nil {
		t.Error("created outside horizon should error")
	}
}

func TestSimulateSelfDelivery(t *testing.T) {
	eg := lineEG(t)
	m, err := Simulate(eg, Message{Src: 2, Dst: 2, Created: 4}, Epidemic{}, 0)
	if err != nil || !m.Delivered || m.DeliveryTime != 4 {
		t.Errorf("self delivery = %+v, %v", m, err)
	}
}

func TestEpidemicMatchesEarliestArrival(t *testing.T) {
	eg := lineEG(t)
	m, err := Simulate(eg, Message{Src: 0, Dst: 3}, Epidemic{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delivered || m.DeliveryTime != 3 {
		t.Errorf("epidemic delivery = %+v, want at t=3", m)
	}
	if m.Copies < 3 {
		t.Errorf("epidemic copies = %d, want >= 3", m.Copies)
	}
	arr, _, _ := eg.EarliestArrival(0, 0)
	if m.DeliveryTime != arr[3] {
		t.Errorf("epidemic (%d) must match earliest arrival (%d)", m.DeliveryTime, arr[3])
	}
}

func TestEpidemicFloodsWithinTimeUnit(t *testing.T) {
	// All contacts at the same time unit: instantaneous cascade.
	eg, _ := temporal.New(4, 3)
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(1, 2, 1)
	_ = eg.AddContact(2, 3, 1)
	m, err := Simulate(eg, Message{Src: 0, Dst: 3}, Epidemic{}, 0)
	if err != nil || !m.Delivered || m.DeliveryTime != 1 {
		t.Errorf("cascade delivery = %+v, %v; want t=1", m, err)
	}
}

func TestDirectDelivery(t *testing.T) {
	eg := lineEG(t)
	m, err := Simulate(eg, Message{Src: 0, Dst: 3}, DirectDelivery{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delivered || m.DeliveryTime != 8 {
		t.Errorf("direct delivery = %+v, want t=8 (the only 0-3 contact)", m)
	}
	if m.Copies != 1 || m.Forwards != 1 {
		t.Errorf("direct should never replicate: %+v", m)
	}
}

func TestDirectDeliveryFails(t *testing.T) {
	eg, _ := temporal.New(3, 5)
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(1, 2, 2)
	m, err := Simulate(eg, Message{Src: 0, Dst: 2}, DirectDelivery{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered {
		t.Error("no direct contact exists; delivery must fail")
	}
	if m.Delay(Message{Src: 0, Dst: 2}) != -1 {
		t.Error("Delay of undelivered must be -1")
	}
}

func TestFirstContactSingleCopy(t *testing.T) {
	eg := lineEG(t)
	m, err := Simulate(eg, Message{Src: 0, Dst: 3}, FirstContact{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delivered {
		t.Fatal("first-contact should deliver along the line")
	}
	if m.Copies != 1 {
		t.Errorf("single-copy policy peaked at %d copies", m.Copies)
	}
}

func TestSprayAndWait(t *testing.T) {
	// Star contacts then direct: source meets 2 relays, one relay meets dst.
	eg, _ := temporal.New(5, 10)
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(0, 2, 2)
	_ = eg.AddContact(2, 4, 5)
	_ = eg.AddContact(3, 4, 6)
	msg := Message{Src: 0, Dst: 4}
	m, err := Simulate(eg, msg, SprayAndWait{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delivered || m.DeliveryTime != 5 {
		t.Errorf("spray delivery = %+v, want t=5 via relay 2", m)
	}
	if m.Copies > 3 {
		t.Errorf("4 tokens allow at most 3 simultaneous carriers here, got %d", m.Copies)
	}
	// With 1 token spray degenerates to direct delivery: never delivered here.
	m1, err := Simulate(eg, msg, SprayAndWait{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Delivered {
		t.Error("1-token spray = direct delivery; no 0-4 contact exists")
	}
}

func TestContactRates(t *testing.T) {
	eg, _ := temporal.New(3, 10)
	for _, tu := range []int{1, 3, 5, 7} {
		_ = eg.AddContact(0, 1, tu)
	}
	_ = eg.AddContact(1, 2, 4)
	rates := ContactRates(eg)
	if rates[0][1] != 0.4 || rates[1][0] != 0.4 {
		t.Errorf("rate(0,1) = %v, want 0.4", rates[0][1])
	}
	if rates[1][2] != 0.1 {
		t.Errorf("rate(1,2) = %v, want 0.1", rates[1][2])
	}
	if rates[0][2] != 0 {
		t.Errorf("rate(0,2) = %v, want 0", rates[0][2])
	}
}

func TestOptimalForwardingSets(t *testing.T) {
	// Triangle: node 0 contacts dst=2 slowly (0.1) and relay 1 quickly
	// (1.0); relay 1 contacts dst at 1.0.
	rates := [][]float64{
		{0, 1.0, 0.1},
		{1.0, 0, 1.0},
		{0.1, 1.0, 0},
	}
	sets, delay, err := OptimalForwardingSets(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if delay[2] != 0 {
		t.Errorf("dst delay = %v", delay[2])
	}
	if math.Abs(delay[1]-1) > 1e-9 {
		t.Errorf("relay delay = %v, want 1", delay[1])
	}
	// Node 0: using only dst: ED = 1/0.1 = 10. Adding relay 1 (ED 1):
	// ED = (1 + 1.0*1) / (1.1) ~ 1.818 — strictly better, so 1 must be in
	// the set.
	if !sets[0][1] || !sets[0][2] {
		t.Errorf("node 0 set = %v, want {1, 2}", sets[0])
	}
	if delay[0] >= 10 {
		t.Errorf("node 0 delay = %v, want < direct-only 10", delay[0])
	}
}

func TestOptimalForwardingSetsExcludesWorseRelays(t *testing.T) {
	// Relay 1 is slower to dst than node 0 itself: keep it out.
	rates := [][]float64{
		{0, 5.0, 1.0},
		{5.0, 0, 0.01},
		{1.0, 0.01, 0},
	}
	sets, delay, err := OptimalForwardingSets(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sets[0][1] {
		t.Errorf("node 0 must not forward to the much slower relay: %v (delays %v)", sets[0], delay)
	}
}

func TestOptimalForwardingSetsUnreachable(t *testing.T) {
	rates := [][]float64{
		{0, 0, 0},
		{0, 0, 1},
		{0, 1, 0},
	}
	sets, delay, err := OptimalForwardingSets(rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(delay[0], 1) || len(sets[0]) != 0 {
		t.Errorf("isolated node should be unreachable: delay %v set %v", delay[0], sets[0])
	}
	if _, _, err := OptimalForwardingSets(rates, 9); err == nil {
		t.Error("bad dst should error")
	}
}

func TestSetPolicySimulation(t *testing.T) {
	eg := lineEG(t)
	sets := map[int]map[int]bool{
		0: {1: true},
		1: {2: true},
		2: {3: true},
	}
	m, err := Simulate(eg, Message{Src: 0, Dst: 3}, SetPolicy{Sets: sets}, 0)
	if err != nil || !m.Delivered || m.DeliveryTime != 3 {
		t.Errorf("set policy = %+v, %v; want delivery at 3", m, err)
	}
	// Empty sets: copy never leaves the source except directly.
	m2, err := Simulate(eg, Message{Src: 0, Dst: 3}, SetPolicy{Sets: map[int]map[int]bool{}}, 0)
	if err != nil || !m2.Delivered || m2.DeliveryTime != 8 {
		t.Errorf("empty-set policy = %+v, %v; want direct at 8", m2, err)
	}
}

// --- TOUR ---------------------------------------------------------------

func TestNewTOURValidation(t *testing.T) {
	if _, err := NewTOUR(nil, 1, 10, 0); err == nil {
		t.Error("empty lambda should error")
	}
	if _, err := NewTOUR([]float64{-1}, 1, 10, 0); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := NewTOUR([]float64{1}, 0, 10, 0); err == nil {
		t.Error("zero beta should error")
	}
	if _, err := NewTOUR([]float64{1}, 1, 0, 0); err == nil {
		t.Error("zero deadline should error")
	}
	if _, err := NewTOUR([]float64{1}, 1, 10, -1); err == nil {
		t.Error("negative cost should error")
	}
}

func TestTOURExpectedUtility(t *testing.T) {
	p, _ := NewTOUR([]float64{0.5, 1}, 2, 10, 0)
	if u := p.ExpectedUtility(0, 5); u != 0 {
		t.Errorf("zero-rate utility = %v", u)
	}
	if u := p.ExpectedUtility(1, 0); u != 0 {
		t.Errorf("zero-lifetime utility = %v", u)
	}
	// Monotone in lambda and tau.
	if p.ExpectedUtility(0.5, 5) >= p.ExpectedUtility(1, 5) {
		t.Error("utility must increase with contact rate")
	}
	if p.ExpectedUtility(1, 2) >= p.ExpectedUtility(1, 5) {
		t.Error("utility must increase with remaining lifetime")
	}
	// Closed form sanity: lambda=1, tau=1, beta=2: 2*(1-(1-e^-1)) = 2/e.
	want := 2 * math.Exp(-1)
	if got := p.ExpectedUtility(1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedUtility = %v, want %v", got, want)
	}
}

func TestTOURForwardingSetShrinksOverTime(t *testing.T) {
	// The paper's headline claim for [13]: "the forwarding set at the same
	// intermediate node shrinks over time."
	lambda := []float64{0.05, 0.2, 0.5, 1.0, 0.08, 0}
	p, err := NewTOUR(lambda, 1, 40, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	carrier := 0
	prev := p.ForwardingSet(carrier, 0)
	if len(prev) == 0 {
		t.Fatal("initial forwarding set should not be empty for a slow carrier")
	}
	for tm := 1; tm <= 40; tm++ {
		cur := p.ForwardingSet(carrier, tm)
		curSet := map[int]bool{}
		for _, v := range cur {
			curSet[v] = true
		}
		for _, v := range cur {
			found := false
			for _, u := range prev {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("forwarding set grew at t=%d: %v not in previous %v", tm, v, prev)
			}
		}
		if len(cur) > len(prev) {
			t.Fatalf("set size grew at t=%d: %d > %d", tm, len(cur), len(prev))
		}
		prev = cur
	}
	if len(prev) != 0 {
		t.Errorf("at the deadline the forwarding set must be empty, got %v", prev)
	}
}

func TestTOURNeverForwardsToSlower(t *testing.T) {
	p, _ := NewTOUR([]float64{0.5, 0.1}, 1, 20, 0)
	if p.InSet(0, 1, 0) {
		t.Error("slower peer must not be in the forwarding set")
	}
	if p.InSet(0, 0, 0) {
		t.Error("self must not be in the set")
	}
}

func TestTOURSimulatedUtilityBeatsDirect(t *testing.T) {
	// Feature-style synthetic scenario: relays with exponential contacts.
	r := stats.NewRand(7)
	n := 12
	dst := n - 1
	// Per-node contact rates with dst; node 0 is the slow source.
	lambda := make([]float64, n)
	lambda[0] = 0.01
	for i := 1; i < dst; i++ {
		lambda[i] = 0.02 + 0.04*float64(i)
	}
	lambda[dst] = 0
	horizon := 300
	deadline := 200
	var tourU, directU float64
	trials := 60
	for trial := 0; trial < trials; trial++ {
		eg, err := temporal.New(n, horizon)
		if err != nil {
			t.Fatal(err)
		}
		// Pairwise contacts: with dst ~ Exp(lambda[i]); relay-relay uniform
		// sparse meetings so the copy can move around.
		for i := 0; i < dst; i++ {
			if lambda[i] <= 0 {
				continue
			}
			tm := 0.0
			for {
				tm += stats.Exponential(r, lambda[i])
				if int(tm) >= horizon {
					break
				}
				_ = eg.AddContact(i, dst, int(tm))
			}
		}
		for i := 0; i < dst; i++ {
			for j := i + 1; j < dst; j++ {
				tm := 0.0
				for {
					tm += stats.Exponential(r, 0.05)
					if int(tm) >= horizon {
						break
					}
					_ = eg.AddContact(i, j, int(tm))
				}
			}
		}
		p, err := NewTOUR(lambda, 1, deadline, 1)
		if err != nil {
			t.Fatal(err)
		}
		msg := Message{Src: 0, Dst: dst}
		mt, err := Simulate(eg, msg, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mt.Delivered {
			tourU += p.DeliveredUtility(mt.DeliveryTime) - float64(mt.Forwards-1)*p.Cost
		}
		md, err := Simulate(eg, msg, DirectDelivery{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if md.Delivered {
			directU += p.DeliveredUtility(md.DeliveryTime)
		}
	}
	if tourU <= directU {
		t.Errorf("TOUR net utility %v should beat direct delivery %v", tourU, directU)
	}
}

func TestTOURWithMobilityTrace(t *testing.T) {
	// Smoke: the policy composes with the feature-contact model.
	r := stats.NewRand(8)
	profiles := []mobility.FeatureProfile{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	eg, err := mobility.FeatureContacts(r, mobility.FeatureContactConfig{
		Profiles: profiles, BaseProb: 0.3, Decay: 0.5, Steps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := ContactRates(eg)
	lambda := make([]float64, eg.N())
	for i := range lambda {
		lambda[i] = rates[i][3]
	}
	p, err := NewTOUR(lambda, 1, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(eg, Message{Src: 0, Dst: 3}, p, 0); err != nil {
		t.Fatal(err)
	}
}
