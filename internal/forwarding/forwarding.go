// Package forwarding implements dynamic trimming (§III-A): online
// forwarding decisions over a time-evolving contact graph. It provides a
// DTN routing simulator with the classic policies (epidemic, direct
// delivery, first-contact, binary spray-and-wait), the fixed-point
// opportunistic forwarding sets of [12], and the TOUR time-varying optimal
// forwarding set of [13] for exponential inter-contact times and linearly
// decaying message utility — whose defining property, reproduced here, is
// that the forwarding set at an intermediate node shrinks over time.
package forwarding

import (
	"errors"
	"math"
	"sort"

	"structura/internal/temporal"
)

// Message is a single datum to deliver.
type Message struct {
	Src, Dst int
	Created  int // time unit at which the message enters the network
}

// Decision is a policy's reaction to a contact while carrying a copy.
type Decision struct {
	Replicate    bool // hand the peer a copy
	TokensToPeer int  // tokens transferred with the copy (spray-style)
	Drop         bool // carrier forgets its own copy afterwards (handoff)
}

// Env exposes read-only simulator state to policies.
type Env struct {
	Dst     int
	Now     int
	Tokens  []int  // spray tokens per node (0 when unused)
	HasCopy []bool // current carriers
}

// Policy decides, for a carrier meeting peer at a contact, what to do.
// Delivery to the destination itself is handled by the simulator and needs
// no policy cooperation.
type Policy interface {
	Name() string
	Decide(env *Env, carrier, peer int) Decision
}

// Metrics aggregates the outcome of one simulated message.
type Metrics struct {
	Delivered    bool
	DeliveryTime int // time unit of first delivery (valid when Delivered)
	Forwards     int // copy transfers, including the delivering one
	Copies       int // peak number of simultaneous carriers
}

// Delay returns DeliveryTime - Created, or -1 when undelivered.
func (m Metrics) Delay(msg Message) int {
	if !m.Delivered {
		return -1
	}
	return m.DeliveryTime - msg.Created
}

// Simulate runs one message through the EG under the policy. Within a time
// unit transmission is instantaneous (as in §II-B), so decisions cascade
// until a fixpoint before time advances.
func Simulate(eg *temporal.EG, msg Message, p Policy, initialTokens int) (Metrics, error) {
	if msg.Src < 0 || msg.Src >= eg.N() || msg.Dst < 0 || msg.Dst >= eg.N() {
		return Metrics{}, errors.New("forwarding: src/dst out of range")
	}
	if msg.Created < 0 || (msg.Created >= eg.Horizon() && msg.Src != msg.Dst) {
		return Metrics{}, errors.New("forwarding: created time outside horizon")
	}
	env := &Env{
		Dst:     msg.Dst,
		Tokens:  make([]int, eg.N()),
		HasCopy: make([]bool, eg.N()),
	}
	env.HasCopy[msg.Src] = true
	env.Tokens[msg.Src] = initialTokens
	var m Metrics
	m.Copies = 1
	if msg.Src == msg.Dst {
		m.Delivered = true
		m.DeliveryTime = msg.Created
		return m, nil
	}
	// touched[v] marks nodes that carried the message at any point within
	// the current time unit: a copy may not return to them until the next
	// unit, which both matches store-carry-forward semantics and guarantees
	// the within-unit cascade below terminates (handoff policies would
	// otherwise ping-pong a copy across one contact forever).
	touched := make([]bool, eg.N())
	for t := msg.Created; t < eg.Horizon(); t++ {
		env.Now = t
		snap := eg.Snapshot(t)
		for v := range touched {
			touched[v] = env.HasCopy[v]
		}
		for changed := true; changed; {
			changed = false
			for _, e := range snap.Edges() {
				for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
					carrier, peer := dir[0], dir[1]
					if !env.HasCopy[carrier] || env.HasCopy[peer] || touched[peer] {
						continue
					}
					if peer == msg.Dst {
						m.Forwards++
						m.Delivered = true
						m.DeliveryTime = t
						return m, nil
					}
					d := p.Decide(env, carrier, peer)
					if !d.Replicate {
						continue
					}
					env.HasCopy[peer] = true
					touched[peer] = true
					m.Forwards++
					if d.TokensToPeer > 0 {
						moved := d.TokensToPeer
						if moved > env.Tokens[carrier] {
							moved = env.Tokens[carrier]
						}
						env.Tokens[carrier] -= moved
						env.Tokens[peer] += moved
					}
					if d.Drop {
						env.HasCopy[carrier] = false
					}
					changed = true
				}
			}
			carriers := 0
			for _, h := range env.HasCopy {
				if h {
					carriers++
				}
			}
			if carriers > m.Copies {
				m.Copies = carriers
			}
		}
	}
	return m, nil
}

// Epidemic floods: every contact gets a copy.
type Epidemic struct{}

// Name implements Policy.
func (Epidemic) Name() string { return "epidemic" }

// Decide implements Policy.
func (Epidemic) Decide(*Env, int, int) Decision { return Decision{Replicate: true} }

// DirectDelivery never relays; only source-to-destination contacts deliver.
type DirectDelivery struct{}

// Name implements Policy.
func (DirectDelivery) Name() string { return "direct" }

// Decide implements Policy.
func (DirectDelivery) Decide(*Env, int, int) Decision { return Decision{} }

// FirstContact is single-copy: the copy moves to every first new contact.
type FirstContact struct{}

// Name implements Policy.
func (FirstContact) Name() string { return "first-contact" }

// Decide implements Policy.
func (FirstContact) Decide(*Env, int, int) Decision {
	return Decision{Replicate: true, Drop: true}
}

// SprayAndWait is binary spray-and-wait: a carrier with more than one token
// gives half to each new contact; with one token it waits for the
// destination.
type SprayAndWait struct{}

// Name implements Policy.
func (SprayAndWait) Name() string { return "spray-and-wait" }

// Decide implements Policy.
func (SprayAndWait) Decide(env *Env, carrier, _ int) Decision {
	if env.Tokens[carrier] <= 1 {
		return Decision{}
	}
	return Decision{Replicate: true, TokensToPeer: env.Tokens[carrier] / 2}
}

// SetPolicy forwards a single copy only to members of the carrier's
// forwarding set (the [12]-style dynamic trimming: the "neighbor subset"
// notion of §III-A).
type SetPolicy struct {
	Sets map[int]map[int]bool
}

// Name implements Policy.
func (SetPolicy) Name() string { return "forwarding-set" }

// Decide implements Policy.
func (sp SetPolicy) Decide(_ *Env, carrier, peer int) Decision {
	if sp.Sets[carrier][peer] {
		return Decision{Replicate: true, Drop: true}
	}
	return Decision{}
}

// ContactRates estimates per-pair contact rates (contacts per time unit)
// from an EG — the macro-level model of §II-B.
func ContactRates(eg *temporal.EG) [][]float64 {
	n := eg.N()
	rates := make([][]float64, n)
	for i := range rates {
		rates[i] = make([]float64, n)
	}
	if eg.Horizon() == 0 {
		return rates
	}
	h := float64(eg.Horizon())
	for u := 0; u < n; u++ {
		eg.EachNeighbor(u, func(v int) bool {
			rates[u][v] = float64(len(eg.Labels(u, v))) / h
			return true
		})
	}
	return rates
}

// OptimalForwardingSets computes, for every node, the expected-delay-optimal
// forwarding set toward dst under exponential inter-contact times with the
// given rates — the fixed-point construction of opportunistic routing [12].
// It returns the sets and the expected delays. Unreachable nodes get +Inf
// delay and an empty set.
func OptimalForwardingSets(rates [][]float64, dst int) (map[int]map[int]bool, []float64, error) {
	n := len(rates)
	if dst < 0 || dst >= n {
		return nil, nil, errors.New("forwarding: dst out of range")
	}
	delay := make([]float64, n)
	for i := range delay {
		delay[i] = math.Inf(1)
	}
	delay[dst] = 0
	// Dijkstra-like: settle nodes in increasing expected delay. For node i,
	// given the settled set S sorted by delay, the optimal stopping rule
	// includes settled relays j (in increasing delay) while they reduce
	//   ED_i = (1 + sum_j rate_ij * ED_j) / sum_j rate_ij.
	settled := make([]bool, n)
	settled[dst] = true
	order := []int{dst}
	sets := make(map[int]map[int]bool, n)
	sets[dst] = map[int]bool{}
	for len(order) < n {
		bestNode, bestDelay := -1, math.Inf(1)
		var bestSet map[int]bool
		for i := 0; i < n; i++ {
			if settled[i] {
				continue
			}
			var sumRate, sumRD float64
			cur := math.Inf(1)
			set := map[int]bool{}
			for _, j := range order { // increasing delay
				if rates[i][j] <= 0 {
					continue
				}
				// Adding j helps iff delay[j] < current ED_i.
				if delay[j] >= cur {
					break
				}
				sumRate += rates[i][j]
				sumRD += rates[i][j] * delay[j]
				cur = (1 + sumRD) / sumRate
				set[j] = true
			}
			if cur < bestDelay {
				bestNode, bestDelay, bestSet = i, cur, set
			}
		}
		if bestNode == -1 {
			break // remaining nodes are unreachable
		}
		settled[bestNode] = true
		delay[bestNode] = bestDelay
		sets[bestNode] = bestSet
		// Keep order sorted by delay.
		order = append(order, bestNode)
		sort.Slice(order, func(a, b int) bool { return delay[order[a]] < delay[order[b]] })
	}
	for i := 0; i < n; i++ {
		if sets[i] == nil {
			sets[i] = map[int]bool{}
		}
	}
	return sets, delay, nil
}
