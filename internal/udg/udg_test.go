package udg

import (
	"math"
	"testing"

	"structura/internal/geo"
	"structura/internal/stats"
)

func TestStarIsUDG(t *testing.T) {
	// §II-A: "A star graph with one center node and six or more leaves" is
	// not a unit disk graph.
	for leaves := 1; leaves <= 5; leaves++ {
		if !StarIsUDG(leaves) {
			t.Errorf("star with %d leaves should be realizable", leaves)
		}
	}
	for leaves := 6; leaves <= 8; leaves++ {
		if StarIsUDG(leaves) {
			t.Errorf("star with %d leaves must not be a UDG", leaves)
		}
	}
}

func TestFiveLeafStarEmbedding(t *testing.T) {
	// Construct the 5-leaf star as an actual UDG: center origin, leaves on
	// a circle of radius 1 spaced 72 degrees (leaf-leaf distance ~1.18 > 1).
	pts := []geo.Point{{X: 0, Y: 0}}
	for k := 0; k < 5; k++ {
		a := 2 * math.Pi * float64(k) / 5
		pts = append(pts, geo.Point{X: math.Cos(a), Y: math.Sin(a)})
	}
	g := geo.UnitDiskGraph(pts, 1+1e-9) // epsilon absorbs Hypot rounding
	if g.Degree(0) != 5 {
		t.Fatalf("center degree = %d, want 5", g.Degree(0))
	}
	for i := 1; i <= 5; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1 (leaves must be independent)", i, g.Degree(i))
		}
	}
	if v := IndependentNeighborBoundHolds(g, pts); v != -1 {
		t.Errorf("5-leaf star violates nothing, got violation at %d", v)
	}
}

func TestIndependentNeighborBoundOnRandomUDGs(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 20; trial++ {
		pts := geo.RandomPoints(r, 150, 10, 10)
		g := geo.UnitDiskGraph(pts, 1.5)
		if v := IndependentNeighborBoundHolds(g, pts); v != -1 {
			t.Fatalf("trial %d: node %d has > 5 independent neighbors in a UDG", trial, v)
		}
	}
}

func TestApproxTSPSquare(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 0}}
	tour, err := ApproxTSP(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Order) != 4 {
		t.Fatalf("tour order %v", tour.Order)
	}
	seen := map[int]bool{}
	for _, v := range tour.Order {
		if seen[v] {
			t.Fatalf("tour revisits %d", v)
		}
		seen[v] = true
	}
	// Optimum is the square perimeter 4; 2-approx allows <= 8, and for a
	// square the preorder walk gives exactly 4.
	if tour.Length > 8+1e-9 {
		t.Errorf("tour length %v exceeds 2x optimum", tour.Length)
	}
}

func TestApproxTSPEdgeCases(t *testing.T) {
	if _, err := ApproxTSP(nil); err == nil {
		t.Error("empty should error")
	}
	tour, err := ApproxTSP([]geo.Point{{X: 1, Y: 2}})
	if err != nil || tour.Length != 0 || len(tour.Order) != 1 {
		t.Errorf("single point tour = %+v, %v", tour, err)
	}
	tour2, err := ApproxTSP([]geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}})
	if err != nil || math.Abs(tour2.Length-10) > 1e-9 {
		t.Errorf("two-point tour length = %v, want 10", tour2.Length)
	}
}

func TestApproxTSPWithinTwiceMST(t *testing.T) {
	// MST weight <= OPT, and doubling guarantees tour <= 2*MST <= 2*OPT.
	r := stats.NewRand(2)
	for trial := 0; trial < 10; trial++ {
		pts := geo.RandomPoints(r, 100, 10, 10)
		tour, err := ApproxTSP(pts)
		if err != nil {
			t.Fatal(err)
		}
		lb := MSTLowerBound(pts)
		if lb <= 0 {
			t.Fatal("MST lower bound must be positive")
		}
		if tour.Length > 2*lb+1e-9 {
			t.Fatalf("tour %v > 2 * MST %v", tour.Length, lb)
		}
	}
}

func TestMSTLowerBoundEdgeCases(t *testing.T) {
	if MSTLowerBound(nil) != 0 || MSTLowerBound([]geo.Point{{X: 0, Y: 0}}) != 0 {
		t.Error("degenerate MST bounds should be 0")
	}
	if w := MSTLowerBound([]geo.Point{{X: 0, Y: 0}, {X: 0, Y: 2}}); w != 2 {
		t.Errorf("pair MST = %v, want 2", w)
	}
}
