// Package udg implements the unit-disk-graph results quoted in §II-A: the
// star-graph witness that not every graph is a unit disk graph, and the
// constant-factor TSP approximation (MST doubling) that exists on unit disk
// graphs "but not in general graphs".
package udg

import (
	"errors"
	"math"

	"structura/internal/geo"
	"structura/internal/graph"
)

// MaxIndependentNeighbors is the largest number of pairwise-nonadjacent
// neighbors any node of a unit disk graph can have: five. A star with six or
// more leaves therefore cannot be a unit disk graph (§II-A and footnote 2).
const MaxIndependentNeighbors = 5

// StarIsUDG reports whether a star graph with the given number of leaves can
// be realized as a unit disk graph with mutually nonadjacent leaves.
func StarIsUDG(leaves int) bool {
	return leaves <= MaxIndependentNeighbors
}

// IndependentNeighborBoundHolds verifies on a concrete embedded unit disk
// graph that no node has more than five pairwise-nonadjacent neighbors.
// It returns the first violating node, or -1 if the bound holds.
func IndependentNeighborBoundHolds(g *graph.Graph, pts []geo.Point) int {
	c := g.Freeze()
	chosen := make([]int, 0, 8)
	for v := 0; v < c.N(); v++ {
		// Greedy max independent set among neighbors; for the 5-bound the
		// greedy count is a lower bound on the true MIS size, so a greedy
		// count > 5 is a definite violation.
		chosen = chosen[:0]
		for _, u := range c.Neighbors(v) {
			ok := true
			for _, w := range chosen {
				if c.HasEdge(int(u), w) {
					ok = false
					break
				}
			}
			if ok {
				chosen = append(chosen, int(u))
			}
		}
		if len(chosen) > MaxIndependentNeighbors {
			return v
		}
	}
	return -1
}

// TSPTour is a traveling-salesman tour with its total Euclidean length.
type TSPTour struct {
	Order  []int
	Length float64
}

// ApproxTSP computes the classic MST-doubling 2-approximation of the metric
// TSP over the points: build an MST of the complete Euclidean graph, walk it
// in preorder, and shortcut repeats. The returned tour visits every point
// once and returns to the start; its length is at most twice the optimum.
func ApproxTSP(pts []geo.Point) (TSPTour, error) {
	n := len(pts)
	if n == 0 {
		return TSPTour{}, errors.New("udg: no points")
	}
	if n == 1 {
		return TSPTour{Order: []int{0}}, nil
	}
	// Prim's MST on the implicit complete graph: O(n^2), no heap needed.
	inTree := make([]bool, n)
	bestD := make([]float64, n)
	bestTo := make([]int, n)
	children := make([][]int, n)
	for i := range bestD {
		bestD[i] = math.Inf(1)
		bestTo[i] = -1
	}
	bestD[0] = 0
	for it := 0; it < n; it++ {
		v := -1
		for u := 0; u < n; u++ {
			if !inTree[u] && (v == -1 || bestD[u] < bestD[v]) {
				v = u
			}
		}
		inTree[v] = true
		if bestTo[v] >= 0 {
			children[bestTo[v]] = append(children[bestTo[v]], v)
		}
		for u := 0; u < n; u++ {
			if !inTree[u] {
				if d := pts[v].Dist(pts[u]); d < bestD[u] {
					bestD[u] = d
					bestTo[u] = v
				}
			}
		}
	}
	// Preorder walk with shortcutting = visiting order.
	order := make([]int, 0, n)
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for i := len(children[v]) - 1; i >= 0; i-- {
			stack = append(stack, children[v][i])
		}
	}
	tour := TSPTour{Order: order}
	for i := 0; i < n; i++ {
		tour.Length += pts[order[i]].Dist(pts[order[(i+1)%n]])
	}
	return tour, nil
}

// MSTLowerBound returns the Euclidean MST weight of the points — a lower
// bound on the optimal TSP tour length, used to verify the 2-approximation
// empirically.
func MSTLowerBound(pts []geo.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	bestD := make([]float64, n)
	for i := range bestD {
		bestD[i] = math.Inf(1)
	}
	bestD[0] = 0
	var total float64
	for it := 0; it < n; it++ {
		v := -1
		for u := 0; u < n; u++ {
			if !inTree[u] && (v == -1 || bestD[u] < bestD[v]) {
				v = u
			}
		}
		inTree[v] = true
		total += bestD[v]
		for u := 0; u < n; u++ {
			if !inTree[u] {
				if d := pts[v].Dist(pts[u]); d < bestD[u] {
					bestD[u] = d
				}
			}
		}
	}
	return total
}
