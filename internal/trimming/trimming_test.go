package trimming

import (
	"testing"

	"structura/internal/geo"
	"structura/internal/stats"
	"structura/internal/temporal"
)

const (
	nodeA = 0
	nodeB = 1
	nodeC = 2
	nodeD = 3
)

func fig2Prio() Priorities { return PriorityByID(4) } // p(A) > p(B) > p(C) > p(D)

func TestPriorityByID(t *testing.T) {
	p := PriorityByID(3)
	if !(p[0] > p[1] && p[1] > p[2]) {
		t.Errorf("PriorityByID = %v, want strictly decreasing", p)
	}
}

func TestPriorityByScore(t *testing.T) {
	p := PriorityByScore([]float64{5, 1, 5})
	// Node 1 lowest; tie between 0 and 2 broken by lower ID = higher rank.
	if !(p[1] < p[2] && p[2] < p[0]) {
		t.Errorf("PriorityByScore = %v", p)
	}
	seen := map[float64]bool{}
	for _, v := range p {
		if seen[v] {
			t.Fatal("priorities must be distinct")
		}
		seen[v] = true
	}
}

func TestPriorityValidation(t *testing.T) {
	eg := temporal.Fig2EG()
	if _, err := CanTrimNode(eg, 0, Priorities{1, 2}, Options{}); err == nil {
		t.Error("wrong-length priorities should error")
	}
	if _, err := CanTrimNode(eg, 0, Priorities{1, 1, 2, 3}, Options{}); err == nil {
		t.Error("duplicate priorities should error")
	}
	if _, err := CanTrimNode(eg, 9, fig2Prio(), Options{}); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, err := CanIgnoreNeighbor(eg, 0, 9, fig2Prio(), Options{}); err == nil {
		t.Error("out-of-range neighbor should error")
	}
	if _, err := CanTrimLink(eg, 0, 9, fig2Prio(), Options{}); err == nil {
		t.Error("out-of-range link should error")
	}
}

func TestFig2ACanIgnoreD(t *testing.T) {
	// The paper: "any path A -> D -> C can be replaced by a path
	// A -> B -> C... Therefore, A can ignore neighbor D."
	eg := temporal.Fig2EG()
	ok, err := CanIgnoreNeighbor(eg, nodeA, nodeD, fig2Prio(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("A must be able to ignore D in Fig. 2")
	}
}

func TestFig2PaperReplacementExample(t *testing.T) {
	// "A -3-> D -6-> C can be replaced by A -4-> B -5-> C": the replacement
	// departs later (4 >= 3) and arrives earlier (5 <= 6).
	eg := temporal.Fig2EG()
	allowed := []bool{true, true, true, false} // exclude D
	arr := restrictedEarliest(eg, nodeA, nodeC, 3, allowed, 0)
	if arr > 6 {
		t.Fatalf("replacement arrives at %d, want <= 6", arr)
	}
	if arr != 5 {
		t.Errorf("replacement via B should arrive at 5, got %d", arr)
	}
}

func TestFig2DNotFullyTrimmable(t *testing.T) {
	// D relays C -0-> D -1-> A with no replacement (C's next contact is at
	// time 2), so the full node rule must reject trimming D outright.
	eg := temporal.Fig2EG()
	ok, err := CanTrimNode(eg, nodeD, fig2Prio(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("D must not be fully trimmable: it uniquely relays C -0-> D -1-> A")
	}
}

func TestFig2BCannotIgnoreD(t *testing.T) {
	// B -2-> D -3-> A has no replacement departing >= 2 arriving <= 3
	// (B's other contacts with A are at 1 and 4).
	eg := temporal.Fig2EG()
	ok, err := CanIgnoreNeighbor(eg, nodeB, nodeD, fig2Prio(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("B must not be able to ignore D")
	}
}

func TestIgnoredNeighborsView(t *testing.T) {
	eg := temporal.Fig2EG()
	views, err := IgnoredNeighbors(eg, fig2Prio(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range views[nodeA] {
		if u == nodeD {
			found = true
		}
	}
	if !found {
		t.Errorf("A's ignorable set %v must contain D", views[nodeA])
	}
}

func TestMaxIntermediatesRestricts(t *testing.T) {
	// Build an EG where the only replacement path has two intermediates:
	// w -1-> u -9-> v, replacement w -2-> x -3-> y -4-> v.
	eg, _ := temporal.New(5, 12)
	w, u, v, x, y := 0, 1, 2, 3, 4
	_ = eg.AddContact(w, u, 1)
	_ = eg.AddContact(u, v, 9)
	_ = eg.AddContact(w, x, 2)
	_ = eg.AddContact(x, y, 3)
	_ = eg.AddContact(y, v, 4)
	prio := Priorities{5, 1, 4, 3, 2} // u lowest
	ok, err := CanIgnoreNeighbor(eg, w, u, prio, Options{})
	if err != nil || !ok {
		t.Fatalf("unbounded rule should allow ignoring u: %v, %v", ok, err)
	}
	ok, err = CanIgnoreNeighbor(eg, w, u, prio, Options{MaxIntermediates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("1-intermediate bound must reject the 2-intermediate replacement")
	}
	ok, err = CanIgnoreNeighbor(eg, w, u, prio, Options{MaxIntermediates: 2})
	if err != nil || !ok {
		t.Fatalf("2-intermediate bound should accept: %v, %v", ok, err)
	}
}

func TestPriorityBlocksLowRankedIntermediates(t *testing.T) {
	// Replacement path exists but only through a node with *lower*
	// priority than the trimmed node: the rule must reject it (this is the
	// circular-replacement guard).
	eg, _ := temporal.New(4, 10)
	w, u, v, x := 0, 1, 2, 3
	_ = eg.AddContact(w, u, 2)
	_ = eg.AddContact(u, v, 5)
	_ = eg.AddContact(w, x, 3)
	_ = eg.AddContact(x, v, 4)
	high := Priorities{4, 2, 3, 1} // x below u
	ok, err := CanIgnoreNeighbor(eg, w, u, high, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("replacement through lower-priority x must not justify trimming u")
	}
	low := Priorities{4, 1, 3, 2} // x above u
	ok, err = CanIgnoreNeighbor(eg, w, u, low, Options{})
	if err != nil || !ok {
		t.Fatalf("replacement through higher-priority x should justify trimming: %v, %v", ok, err)
	}
}

func TestTrimNodesPreservesEarliestArrival(t *testing.T) {
	// Random EGs: whatever TrimNodes removes, earliest arrival among
	// survivors must be untouched — the paper's core preservation claim.
	r := stats.NewRand(1)
	trimmedSomething := false
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(4)
		horizon := 8
		eg, _ := temporal.New(n, horizon)
		for k := 0; k < n*5; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = eg.AddContact(u, v, r.Intn(horizon))
			}
		}
		prio := PriorityByID(n)
		res, err := TrimNodes(eg, prio, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.RemovedNodes) > 0 {
			trimmedSomething = true
		}
		if err := VerifyPreservation(eg, res.Trimmed, res.RemovedNodes); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if !trimmedSomething {
		t.Error("expected at least one trial to trim at least one node")
	}
}

func TestTrimNodesDegreePriorities(t *testing.T) {
	// Ablation hook: degree-based priorities must also preserve arrivals.
	r := stats.NewRand(2)
	n, horizon := 7, 8
	eg, _ := temporal.New(n, horizon)
	for k := 0; k < n*6; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			_ = eg.AddContact(u, v, r.Intn(horizon))
		}
	}
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(len(eg.Neighbors(v)))
	}
	res, err := TrimNodes(eg, PriorityByScore(deg), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPreservation(eg, res.Trimmed, res.RemovedNodes); err != nil {
		t.Fatal(err)
	}
}

func TestCanTrimLink(t *testing.T) {
	// Redundant link: (w,v) duplicated by a strictly better two-hop path.
	eg, _ := temporal.New(3, 10)
	w, x, v := 0, 1, 2
	_ = eg.AddContact(w, v, 8) // direct but late: candidate link? No —
	_ = eg.AddContact(w, x, 1) // trim needs relay-pattern coverage.
	_ = eg.AddContact(x, v, 2)
	prio := PriorityByID(3)
	// Link (w,v): relay paths through it: a -i-> w -8-> v with a in N(w)\{v}
	// = {x}: i in L(x,w) = {1} <= 8. Replacement x ->? -> v avoiding (w,v):
	// direct (x,v) at 2 <= 8. And paths b -i-> v -j-> w: N(v)\{w} = {x}:
	// i in L(x,v)={2}, j in L(v,w)={8}: replacement x -> w: direct at...
	// L(x,w)={1} < 2. No journey from x departing >=2 reaching w <= 8? Via
	// v: x -2-> v -8-> w uses the link being trimmed: forbidden. So trim
	// must FAIL.
	ok, err := CanTrimLink(eg, w, v, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("link (w,v) is v's only way back to w after time 2; must not trim")
	}
}

func TestCanTrimLinkRedundant(t *testing.T) {
	// x is densely connected to both endpoints, so the direct (w,v) link
	// is relay-redundant and trimmable.
	eg, _ := temporal.New(3, 10)
	w, x, v := 0, 1, 2
	for tu := 0; tu < 10; tu++ {
		_ = eg.AddContact(w, x, tu)
		_ = eg.AddContact(x, v, tu)
	}
	_ = eg.AddContact(w, v, 8)
	prio := PriorityByID(3)
	ok, err := CanTrimLink(eg, w, v, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("densely bypassed link should be trimmable")
	}
	// Removing it must leave all arrivals unchanged (x relays instantly).
	work := eg.Clone()
	work.RemoveEdge(w, v)
	for start := 0; start < 10; start++ {
		for _, s0 := range []int{w, x, v} {
			a1, _, _ := eg.EarliestArrival(s0, start)
			a2, _, _ := work.EarliestArrival(s0, start)
			for d := 0; d < 3; d++ {
				if a1[d] != a2[d] {
					t.Fatalf("arrival %d->%d at start %d changed: %d -> %d", s0, d, start, a1[d], a2[d])
				}
			}
		}
	}
}

func TestTrimIsolatedAndAbsentNeighbors(t *testing.T) {
	eg, _ := temporal.New(3, 5)
	prio := PriorityByID(3)
	// w has no link to u at all: trivially ignorable.
	ok, err := CanIgnoreNeighbor(eg, 0, 1, prio, Options{})
	if err != nil || !ok {
		t.Errorf("absent neighbor should be trivially ignorable: %v %v", ok, err)
	}
	// Isolated node is trivially trimmable but TrimNodes skips no-ops.
	res, err := TrimNodes(eg, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedNodes) != 0 {
		t.Errorf("nothing to remove in an empty EG, got %v", res.RemovedNodes)
	}
}

func TestGabrielAndRNG(t *testing.T) {
	r := stats.NewRand(3)
	pts := geo.RandomPoints(r, 120, 10, 10)
	udg := geo.UnitDiskGraph(pts, 2.5)
	if !udg.Connected() {
		t.Skip("sparse draw; pick another seed")
	}
	gg := GabrielGraph(udg, pts)
	rng := RelativeNeighborhoodGraph(udg, pts)
	if gg.M() >= udg.M() {
		t.Errorf("Gabriel should sparsify: %d >= %d", gg.M(), udg.M())
	}
	if rng.M() > gg.M() {
		t.Errorf("RNG (%d edges) must be a subgraph of Gabriel (%d)", rng.M(), gg.M())
	}
	for _, e := range rng.Edges() {
		if !gg.HasEdge(e.From, e.To) {
			t.Fatalf("RNG edge %v missing from Gabriel graph", e)
		}
	}
	for _, e := range gg.Edges() {
		if !udg.HasEdge(e.From, e.To) {
			t.Fatalf("Gabriel edge %v not in UDG", e)
		}
	}
	if !gg.Connected() || !rng.Connected() {
		t.Error("topology control must preserve connectivity")
	}
}

func TestGabrielSquareWithCenter(t *testing.T) {
	// Unit square corners + center: diagonals are Gabriel-blocked by the
	// center point.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 0.5, Y: 0.5}}
	udg := geo.UnitDiskGraph(pts, 2)
	gg := GabrielGraph(udg, pts)
	if gg.HasEdge(0, 2) || gg.HasEdge(1, 3) {
		t.Error("diagonals must be trimmed by the center witness")
	}
	if !gg.HasEdge(0, 1) || !gg.HasEdge(1, 2) {
		t.Error("square sides must survive")
	}
	if !gg.Connected() {
		t.Error("Gabriel graph must stay connected")
	}
}

func TestLocalHorizonRestriction(t *testing.T) {
	// Replacement needs an intermediate 3 hops from the observer: with the
	// 2-hop local horizon of §III-A the rule must refuse; with global
	// information it accepts.
	eg, _ := temporal.New(6, 12)
	w, u, v := 0, 1, 2
	x, y, z := 3, 4, 5
	_ = eg.AddContact(w, u, 1)
	_ = eg.AddContact(u, v, 9)
	// Replacement w -> x -> y -> z -> v: z is 3 hops from w.
	_ = eg.AddContact(w, x, 2)
	_ = eg.AddContact(x, y, 3)
	_ = eg.AddContact(y, z, 4)
	_ = eg.AddContact(z, v, 5)
	prio := Priorities{6, 1, 5, 4, 3, 2} // u lowest
	ok, err := CanIgnoreNeighbor(eg, w, u, prio, Options{})
	if err != nil || !ok {
		t.Fatalf("global rule should accept: %v, %v", ok, err)
	}
	ok, err = CanIgnoreNeighbor(eg, w, u, prio, Options{LocalHorizon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2-hop horizon must reject the 3-hop replacement")
	}
	ok, err = CanIgnoreNeighbor(eg, w, u, prio, Options{LocalHorizon: 3})
	if err != nil || !ok {
		t.Fatalf("3-hop horizon should accept: %v, %v", ok, err)
	}
}

func TestFig2LocalHorizonTwoHops(t *testing.T) {
	// The paper's own example is decided with 2-hop information: A's
	// replacement for D routes through B, one hop away.
	eg := temporal.Fig2EG()
	ok, err := CanIgnoreNeighbor(eg, 0, 3, fig2Prio(), Options{LocalHorizon: 2})
	if err != nil || !ok {
		t.Fatalf("A must be able to ignore D with 2-hop info: %v, %v", ok, err)
	}
}

func TestMaxIntermediatesOnePreservesMinHop(t *testing.T) {
	// The paper: "To enforce [min hop preservation], we can require that
	// each replacement path have, at most, one intermediate node." Verify:
	// trimming under MaxIntermediates=1 never increases min-hop counts
	// between survivors.
	r := stats.NewRand(11)
	checked := 0
	for trial := 0; trial < 30; trial++ {
		n, horizon := 7, 8
		eg, _ := temporal.New(n, horizon)
		for k := 0; k < n*7; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = eg.AddContact(u, v, r.Intn(horizon))
			}
		}
		res, err := TrimNodes(eg, PriorityByID(n), Options{MaxIntermediates: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.RemovedNodes) == 0 {
			continue
		}
		checked++
		gone := map[int]bool{}
		for _, v := range res.RemovedNodes {
			gone[v] = true
		}
		for s := 0; s < n; s++ {
			if gone[s] {
				continue
			}
			for d := 0; d < n; d++ {
				if d == s || gone[d] {
					continue
				}
				for start := 0; start < horizon; start++ {
					j1, err1 := eg.MinHopJourney(s, d, start)
					j2, err2 := res.Trimmed.MinHopJourney(s, d, start)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("trial %d %d->%d@%d: reachability changed", trial, s, d, start)
					}
					if err1 == nil && j2.Hops() > j1.Hops() {
						t.Fatalf("trial %d %d->%d@%d: min hops %d -> %d after trimming",
							trial, s, d, start, j1.Hops(), j2.Hops())
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no trial trimmed anything; densities need adjusting")
	}
}
