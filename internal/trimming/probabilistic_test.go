package trimming

import (
	"testing"

	"structura/internal/temporal"
)

// probEG builds the Fig. 2 shape with configurable reliability on the A-B
// replacement path.
func probEG(t *testing.T, abReliability float64) *temporal.EG {
	t.Helper()
	eg, err := temporal.New(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	const a, b, c, d = 0, 1, 2, 3
	add := func(u, v, tm int, p float64) {
		t.Helper()
		if err := eg.AddWeightedContact(u, v, tm, p); err != nil {
			t.Fatal(err)
		}
	}
	add(a, b, 1, abReliability)
	add(a, b, 4, abReliability)
	add(b, c, 2, abReliability)
	add(b, c, 5, abReliability)
	add(a, d, 1, 1)
	add(a, d, 3, 1)
	add(b, d, 2, 1)
	add(c, d, 0, 1)
	add(c, d, 6, 1)
	return eg
}

func TestProbTrimReliableReplacement(t *testing.T) {
	// Fully reliable replacement path: the probabilistic rule agrees with
	// the deterministic one (A can ignore D).
	eg := probEG(t, 1)
	ok, err := CanIgnoreNeighborProb(eg, 0, 3, PriorityByID(4), ProbOptions{Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reliable replacement must allow ignoring D")
	}
}

func TestProbTrimUnreliableReplacement(t *testing.T) {
	// The A-B-C replacement only succeeds with probability 0.5*0.5 = 0.25
	// per leg pair while the relay through D is fully reliable: at
	// confidence 1 the rule must refuse.
	eg := probEG(t, 0.5)
	ok, err := CanIgnoreNeighborProb(eg, 0, 3, PriorityByID(4), ProbOptions{Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unreliable replacement must not justify ignoring a reliable relay")
	}
	// Lowering the confidence requirement to 0.2 accepts the 0.25-prob
	// replacement.
	ok, err = CanIgnoreNeighborProb(eg, 0, 3, PriorityByID(4), ProbOptions{Confidence: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("confidence 0.2 should accept the 0.25-probability replacement")
	}
}

func TestProbTrimValidation(t *testing.T) {
	eg := probEG(t, 1)
	if _, err := CanIgnoreNeighborProb(eg, 0, 3, PriorityByID(4), ProbOptions{}); err == nil {
		t.Error("zero confidence should error")
	}
	if _, err := CanIgnoreNeighborProb(eg, 0, 9, PriorityByID(4), ProbOptions{Confidence: 1}); err == nil {
		t.Error("bad node should error")
	}
	if _, err := CanIgnoreNeighborProb(eg, 0, 3, Priorities{1}, ProbOptions{Confidence: 1}); err == nil {
		t.Error("bad priorities should error")
	}
}

func TestProbTrimAbsentNeighbor(t *testing.T) {
	eg, _ := temporal.New(3, 5)
	ok, err := CanIgnoreNeighborProb(eg, 0, 1, PriorityByID(3), ProbOptions{Confidence: 1})
	if err != nil || !ok {
		t.Errorf("absent neighbor trivially ignorable: %v %v", ok, err)
	}
}

func TestMaxProbArrivalPicksReliablePath(t *testing.T) {
	// Two routes 0->2: early unreliable direct vs later reliable two-hop.
	eg, _ := temporal.New(3, 10)
	_ = eg.AddWeightedContact(0, 2, 1, 0.1)
	_ = eg.AddWeightedContact(0, 1, 2, 0.9)
	_ = eg.AddWeightedContact(1, 2, 3, 0.9)
	allowed := []bool{true, true, true}
	probs := maxProbArrival(eg, 0, 0, 9, allowed)
	if probs[2] < 0.8 {
		t.Errorf("best probability to 2 = %v, want 0.81 via the reliable relay", probs[2])
	}
	// With deadline 1 only the unreliable direct contact fits.
	probs = maxProbArrival(eg, 0, 0, 1, allowed)
	if probs[2] != 0.1 {
		t.Errorf("deadline-1 probability = %v, want 0.1", probs[2])
	}
}
