package trimming

import (
	"container/heap"
	"errors"
	"sort"

	"structura/internal/temporal"
)

// The paper (§III-A) leaves open how far local trimming can be pushed:
// "more research is needed on local trimming in time-evolving graphs
// maintaining a given set of global properties." This file provides the
// empirical instrument: routing over the *composed* per-node views — every
// node independently drops the neighbors it may locally ignore — and a
// verifier comparing the resulting earliest arrivals with the untrimmed
// graph. The per-segment replacement guarantee does not automatically
// compose across hops (each replacement may route through links other
// nodes have dropped), so the measured gap quantifies exactly the open
// question.

// ViewEarliestArrival computes earliest arrival from src (start time
// start) when every node w refuses to *relay* over the links in views[w] —
// the per-node ignored-neighbor sets of IgnoredNeighbors. Ignoring is a
// relay decision: delivery to the ignored neighbor itself stays allowed
// (the rule's replacement guarantee covers paths THROUGH u, not paths TO
// u), and messages may be received over any link. The returned arrival for
// node d is therefore "earliest arrival at d treating d as the final
// destination". Unreachable nodes get temporal.Infinity.
func ViewEarliestArrival(eg *temporal.EG, views map[int][]int, src, start int) ([]int, error) {
	n := eg.N()
	if src < 0 || src >= n {
		return nil, errors.New("trimming: src out of range")
	}
	ignored := make([]map[int]bool, n)
	for w, list := range views {
		if w < 0 || w >= n {
			return nil, errors.New("trimming: view node out of range")
		}
		set := make(map[int]bool, len(list))
		for _, u := range list {
			set[u] = true
		}
		ignored[w] = set
	}
	// relay[v] = earliest time the message is held by v as a RELAY (i.e.
	// reached without using any ignored link). arrival[v] additionally
	// allows one final ignored hop into v.
	relay := make([]int, n)
	arrival := make([]int, n)
	for i := range relay {
		relay[i] = temporal.Infinity
		arrival[i] = temporal.Infinity
	}
	relay[src] = start
	arrival[src] = start
	pq := &viewHeap{{node: src, t: start}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(viewItem)
		if it.t > relay[it.node] {
			continue
		}
		eg.EachNeighbor(it.node, func(v int) bool {
			labels := eg.Labels(it.node, v)
			pos := sort.SearchInts(labels, it.t)
			if pos == len(labels) {
				return true
			}
			t := labels[pos]
			if ignored[it.node] != nil && ignored[it.node][v] {
				// Final-hop delivery only: v gets the message but will not
				// relay it (it was reached over a link its holder had
				// trimmed from the relay view).
				if t < arrival[v] {
					arrival[v] = t
				}
				return true
			}
			if t < relay[v] {
				relay[v] = t
				if t < arrival[v] {
					arrival[v] = t
				}
				heap.Push(pq, viewItem{node: v, t: t})
			}
			return true
		})
	}
	return arrival, nil
}

// ViewCompositionReport quantifies how composed local views degrade global
// routing.
type ViewCompositionReport struct {
	Pairs        int // (src, start, dst) triples with a finite baseline
	Exact        int // triples where the view arrival equals the baseline
	Delayed      int // finite but later
	Disconnected int // unreachable under the views
	LinksDropped int // total directed view entries
}

// CompareViewRouting routes every (src, start) pair over both the full EG
// and the composed views and tallies the differences.
func CompareViewRouting(eg *temporal.EG, views map[int][]int) (ViewCompositionReport, error) {
	var rep ViewCompositionReport
	for _, list := range views {
		rep.LinksDropped += len(list)
	}
	for src := 0; src < eg.N(); src++ {
		for start := 0; start < eg.Horizon(); start++ {
			base, _, err := eg.EarliestArrival(src, start)
			if err != nil {
				return rep, err
			}
			got, err := ViewEarliestArrival(eg, views, src, start)
			if err != nil {
				return rep, err
			}
			for d := 0; d < eg.N(); d++ {
				if d == src || base[d] == temporal.Infinity {
					continue
				}
				rep.Pairs++
				switch {
				case got[d] == base[d]:
					rep.Exact++
				case got[d] == temporal.Infinity:
					rep.Disconnected++
				default:
					rep.Delayed++
				}
			}
		}
	}
	return rep, nil
}

type viewItem struct {
	node, t int
}

type viewHeap []viewItem

func (h viewHeap) Len() int            { return len(h) }
func (h viewHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h viewHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *viewHeap) Push(x interface{}) { *h = append(*h, x.(viewItem)) }
func (h *viewHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
