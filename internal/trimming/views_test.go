package trimming

import (
	"testing"

	"structura/internal/stats"
	"structura/internal/temporal"
)

func TestViewEarliestArrivalNoViews(t *testing.T) {
	eg := temporal.Fig2EG()
	for start := 0; start < eg.Horizon(); start++ {
		base, _, err := eg.EarliestArrival(0, start)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ViewEarliestArrival(eg, nil, 0, start)
		if err != nil {
			t.Fatal(err)
		}
		for v := range base {
			if base[v] != got[v] {
				t.Fatalf("start %d node %d: %d vs %d", start, v, base[v], got[v])
			}
		}
	}
	if _, err := ViewEarliestArrival(eg, nil, -1, 0); err == nil {
		t.Error("bad src should error")
	}
	if _, err := ViewEarliestArrival(eg, map[int][]int{9: {0}}, 0, 0); err == nil {
		t.Error("out-of-range view node should error")
	}
}

func TestFig2ViewRoutingFromA(t *testing.T) {
	// A ignoring D is safe for everything A originates: the directional
	// rule guarantees it.
	eg := temporal.Fig2EG()
	views := map[int][]int{0: {3}} // only A drops D
	for start := 0; start < eg.Horizon(); start++ {
		base, _, err := eg.EarliestArrival(0, start)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ViewEarliestArrival(eg, views, 0, start)
		if err != nil {
			t.Fatal(err)
		}
		for v := range base {
			if v == 3 {
				continue // D itself may now be reached later/differently
			}
			if base[v] != got[v] {
				t.Fatalf("start %d node %d: view arrival %d vs base %d", start, v, got[v], base[v])
			}
		}
	}
}

func TestCompareViewRoutingOnFig2(t *testing.T) {
	eg := temporal.Fig2EG()
	views, err := IgnoredNeighbors(eg, PriorityByID(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareViewRouting(eg, views)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 {
		t.Fatal("no pairs compared")
	}
	if rep.Exact+rep.Delayed+rep.Disconnected != rep.Pairs {
		t.Fatal("report does not partition the pairs")
	}
	// On Fig. 2 only A ignores D; composition is harmless except for
	// journeys terminating AT D that would have entered via A.
	if rep.Disconnected > 0 {
		t.Errorf("Fig. 2 views disconnected %d pairs", rep.Disconnected)
	}
}

func TestCompareViewRoutingComposesImperfectly(t *testing.T) {
	// The open question in numbers: on random EGs, composed views are
	// usually exact but not always — tally both outcomes over many trials
	// and require that (a) the common case is exact, (b) the report is
	// internally consistent.
	r := stats.NewRand(1)
	var total ViewCompositionReport
	for trial := 0; trial < 15; trial++ {
		n, horizon := 7, 7
		eg, _ := temporal.New(n, horizon)
		for k := 0; k < 35; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = eg.AddContact(u, v, r.Intn(horizon))
			}
		}
		views, err := IgnoredNeighbors(eg, PriorityByID(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := CompareViewRouting(eg, views)
		if err != nil {
			t.Fatal(err)
		}
		total.Pairs += rep.Pairs
		total.Exact += rep.Exact
		total.Delayed += rep.Delayed
		total.Disconnected += rep.Disconnected
		total.LinksDropped += rep.LinksDropped
	}
	if total.Pairs == 0 {
		t.Fatal("nothing compared")
	}
	if float64(total.Exact)/float64(total.Pairs) < 0.9 {
		t.Errorf("composed views exact on only %d/%d pairs", total.Exact, total.Pairs)
	}
	if total.LinksDropped == 0 {
		t.Skip("no links were ignorable in any trial")
	}
}
