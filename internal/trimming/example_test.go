package trimming_test

import (
	"fmt"

	"structura/internal/temporal"
	"structura/internal/trimming"
)

// The paper's Fig. 2 trimming walkthrough: A can ignore neighbor D because
// every relay A -> D -> v has a replacement that departs no earlier and
// arrives no later.
func ExampleCanIgnoreNeighbor() {
	eg := temporal.Fig2EG() // A=0, B=1, C=2, D=3
	prio := trimming.PriorityByID(4)

	ok, err := trimming.CanIgnoreNeighbor(eg, 0, 3, prio, trimming.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("A can ignore D:", ok)

	full, err := trimming.CanTrimNode(eg, 3, prio, trimming.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("D fully trimmable:", full)
	// Output:
	// A can ignore D: true
	// D fully trimmable: false
}
