package trimming

import (
	"errors"
	"sort"

	"structura/internal/temporal"
)

// The paper (§III-A): "In situations where link labels are not
// deterministically, but rather, probabilistically, known, it would be
// interesting to explore different probabilistic versions of the trimming
// rule." This file provides one: contact weights in (0,1] are read as
// existence probabilities, and a relay through u is replaceable when some
// journey avoiding u arrives no later *and* succeeds with at least
// Confidence times the probability of the relay itself.

// ProbOptions configures the probabilistic rule.
type ProbOptions struct {
	// Confidence scales how reliable the replacement must be relative to
	// the replaced two-hop relay: replacement success probability >=
	// Confidence * P(relay). 1 demands an equally reliable replacement;
	// values below 1 accept riskier replacements. Must be in (0, +inf).
	Confidence float64
}

// maxProbArrival computes, for every node, the maximum success probability
// over journeys from src (departing >= start, arriving <= deadline) using
// only allowed intermediates, where a journey's probability is the product
// of its contacts' probabilities. It returns the per-node best probability.
//
// States are (node, time) Pareto frontiers: we propagate label times in
// increasing order, keeping for each node the best probability achievable
// by each arrival time (later arrivals may allow larger probabilities, so
// a full frontier is kept).
func maxProbArrival(eg *temporal.EG, src, start, deadline int, allowed []bool) map[int]float64 {
	type state struct {
		node, t int
	}
	best := map[state]float64{{src, start}: 1}
	// Process states in increasing time; since contacts only move forward
	// in time, a simple worklist ordered by t terminates.
	queue := []state{{src, start}}
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i].t < queue[j].t })
		cur := queue[0]
		queue = queue[1:]
		p := best[cur]
		if cur.node != src && !allowed[cur.node] {
			continue // may terminate here but not relay further
		}
		eg.EachNeighbor(cur.node, func(v int) bool {
			for _, t := range eg.Labels(cur.node, v) {
				if t < cur.t || t > deadline {
					continue
				}
				w, err := eg.Weight(cur.node, v, t)
				if err != nil || w <= 0 {
					continue
				}
				if w > 1 {
					w = 1
				}
				ns := state{v, t}
				if np := p * w; np > best[ns] {
					best[ns] = np
					queue = append(queue, ns)
				}
			}
			return true
		})
	}
	out := make(map[int]float64)
	for s, p := range best {
		if p > out[s.node] {
			out[s.node] = p
		}
	}
	return out
}

// CanIgnoreNeighborProb is the probabilistic directional trimming rule:
// node w may ignore neighbor u if, for every relay w -i-> u -j-> v with
// i <= j, a journey from w to v avoiding u departs no earlier than i,
// arrives no later than j, routes through higher-priority intermediates,
// and succeeds with probability at least opts.Confidence times the relay's
// own success probability P(w,u,i) * P(u,v,j).
func CanIgnoreNeighborProb(eg *temporal.EG, w, u int, prio Priorities, opts ProbOptions) (bool, error) {
	if err := prio.validate(eg.N()); err != nil {
		return false, err
	}
	if w < 0 || w >= eg.N() || u < 0 || u >= eg.N() {
		return false, errors.New("trimming: node out of range")
	}
	if opts.Confidence <= 0 {
		return false, errors.New("trimming: Confidence must be positive")
	}
	allowed := allowedAbove(eg.N(), prio, prio[u], u)
	iLabels := eg.Labels(w, u)
	if len(iLabels) == 0 {
		return true, nil
	}
	ok := true
	var iterErr error
	eg.EachNeighbor(u, func(v int) bool {
		if v == w {
			return true
		}
		for _, i := range iLabels {
			pwu, err := eg.Weight(w, u, i)
			if err != nil {
				iterErr = err
				return false
			}
			for _, j := range eg.Labels(u, v) {
				if i > j {
					continue
				}
				puv, err := eg.Weight(u, v, j)
				if err != nil {
					iterErr = err
					return false
				}
				relayProb := clampProb(pwu) * clampProb(puv)
				need := opts.Confidence * relayProb
				probs := maxProbArrival(eg, w, i, j, allowed)
				if probs[v] < need {
					ok = false
					return false
				}
			}
		}
		return true
	})
	if iterErr != nil {
		return false, iterErr
	}
	return ok, nil
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
