// Package trimming implements structural trimming (§III-A): removing
// "useless" or "redundant" nodes and links from a time-evolving graph while
// preserving its global properties.
//
// The static temporal trimming rule follows the paper exactly: node u can be
// trimmed if for any path w -i-> u -j-> v with i <= j there is a replacement
// path w -i'-> u1 -> ... -> uk -j'-> v with i <= i' and j' <= j whose
// intermediate nodes all have priority higher than u's (priorities break
// replacement cycles). Only the first- and last-hop labels are compared.
// The directional variant ("A can ignore neighbor D" in Fig. 2) lets a
// single node drop one neighbor from its local view.
//
// For unit disk graphs the package provides the classic localized topology
// controls (Gabriel graph and relative neighborhood graph), which preserve
// connectivity while sparsifying.
package trimming

import (
	"errors"
	"fmt"
	"sort"

	"structura/internal/geo"
	"structura/internal/graph"
	"structura/internal/temporal"
)

// Options controls the trimming rule's strictness.
type Options struct {
	// MaxIntermediates bounds the number of intermediate nodes allowed on a
	// replacement path; 0 means unbounded. The paper notes that requiring
	// at most one intermediate preserves minimum hop count in addition to
	// minimum completion time.
	MaxIntermediates int
	// LocalHorizon restricts replacement intermediates to nodes within
	// this many hops (in the EG footprint) of the observing node w — the
	// paper's "local information (within k hops for a small k)"; 0 means
	// unbounded (global information).
	LocalHorizon int
}

// Priorities assigns each node a distinct strategic priority; higher values
// are more important and survive trimming. The paper suggests node IDs,
// node degree, or betweenness.
type Priorities []float64

// PriorityByID returns priorities where lower IDs are more important
// (the paper's p(A) > p(B) > p(C) > ... convention).
func PriorityByID(n int) Priorities {
	p := make(Priorities, n)
	for i := range p {
		p[i] = float64(n - i)
	}
	return p
}

// PriorityByScore builds priorities from a score (degree, betweenness,...),
// breaking ties by lower ID so priorities are distinct, as the rule requires.
func PriorityByScore(scores []float64) Priorities {
	n := len(scores)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if scores[ids[a]] != scores[ids[b]] {
			return scores[ids[a]] < scores[ids[b]]
		}
		return ids[a] > ids[b]
	})
	p := make(Priorities, n)
	for rank, id := range ids {
		p[id] = float64(rank + 1)
	}
	return p
}

func (p Priorities) validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("trimming: %d priorities for %d nodes", len(p), n)
	}
	seen := make(map[float64]bool, n)
	for _, v := range p {
		if seen[v] {
			return errors.New("trimming: priorities must be distinct")
		}
		seen[v] = true
	}
	return nil
}

// restrictedEarliest computes earliest arrival from src (start time start)
// using only intermediate nodes allowed[x] == true (src and dst are always
// usable as endpoints; dst is checked by the caller), with an optional bound
// on the number of intermediate nodes (maxIntermediates 0 = unbounded).
// It returns the arrival time at dst, or temporal.Infinity.
func restrictedEarliest(eg *temporal.EG, src, dst, start int, allowed []bool, maxIntermediates int) int {
	// Layered DP over hop count so the intermediate bound is exact:
	// a path with h hops has h-1 intermediates.
	n := eg.N()
	best := make([]int, n)
	for i := range best {
		best[i] = temporal.Infinity
	}
	best[src] = start
	maxHops := n
	if maxIntermediates > 0 && maxIntermediates+1 < maxHops {
		maxHops = maxIntermediates + 1
	}
	ans := temporal.Infinity
	for h := 1; h <= maxHops; h++ {
		next := append([]int(nil), best...)
		improved := false
		for u := 0; u < n; u++ {
			if best[u] == temporal.Infinity {
				continue
			}
			if u != src && !allowed[u] {
				continue // u may terminate a path but not extend one
			}
			eg.EachNeighbor(u, func(v int) bool {
				if v != dst && !allowed[v] {
					return true
				}
				labels := eg.Labels(u, v)
				pos := sort.SearchInts(labels, best[u])
				if pos == len(labels) {
					return true
				}
				if t := labels[pos]; t < next[v] {
					next[v] = t
					improved = true
				}
				return true
			})
		}
		best = next
		if best[dst] < ans {
			ans = best[dst]
		}
		if !improved {
			break
		}
	}
	return ans
}

// CanIgnoreNeighbor reports whether node w can drop neighbor u from its
// local view: every path w -i-> u -j-> v (i <= j) has a replacement that
// avoids u, departs no earlier than i, arrives no later than j, and routes
// only through nodes with priority above u's. This is the directional rule
// behind "A can ignore neighbor D" in Fig. 2.
func CanIgnoreNeighbor(eg *temporal.EG, w, u int, prio Priorities, opts Options) (bool, error) {
	if err := prio.validate(eg.N()); err != nil {
		return false, err
	}
	if w < 0 || w >= eg.N() || u < 0 || u >= eg.N() {
		return false, errors.New("trimming: node out of range")
	}
	allowed := allowedAbove(eg.N(), prio, prio[u], u)
	restrictToBall(eg, w, opts.LocalHorizon, allowed)
	iLabels := eg.Labels(w, u)
	if len(iLabels) == 0 {
		return true, nil // nothing to ignore
	}
	ok := true
	eg.EachNeighbor(u, func(v int) bool {
		if v == w {
			return true
		}
		jLabels := eg.Labels(u, v)
		for _, i := range iLabels {
			for _, j := range jLabels {
				if i > j {
					continue
				}
				if restrictedEarliest(eg, w, v, i, allowed, opts.MaxIntermediates) > j {
					ok = false
					return false
				}
			}
		}
		return true
	})
	return ok, nil
}

// CanTrimNode reports whether node u is trimmable under the full node
// replacement rule: the CanIgnoreNeighbor condition holds for every ordered
// neighbor pair (w, v) of u.
func CanTrimNode(eg *temporal.EG, u int, prio Priorities, opts Options) (bool, error) {
	if err := prio.validate(eg.N()); err != nil {
		return false, err
	}
	if u < 0 || u >= eg.N() {
		return false, errors.New("trimming: node out of range")
	}
	allowed := allowedAbove(eg.N(), prio, prio[u], u)
	restrictToBall(eg, u, opts.LocalHorizon, allowed)
	nbrs := eg.Neighbors(u)
	for _, w := range nbrs {
		iLabels := eg.Labels(w, u)
		for _, v := range nbrs {
			if v == w {
				continue
			}
			jLabels := eg.Labels(u, v)
			for _, i := range iLabels {
				for _, j := range jLabels {
					if i > j {
						continue
					}
					if restrictedEarliest(eg, w, v, i, allowed, opts.MaxIntermediates) > j {
						return false, nil
					}
				}
			}
		}
	}
	return true, nil
}

// CanTrimLink reports whether the (undirected) link (u,v) is trimmable
// under the link replacement rule — the refinement of the node rule: every
// relay path w -i-> u -j-> v through the link (and symmetrically through
// (v,u)) has a replacement avoiding the link itself, departing >= i and
// arriving <= j, routed through nodes with priority above min(p(u), p(v)).
func CanTrimLink(eg *temporal.EG, u, v int, prio Priorities, opts Options) (bool, error) {
	if err := prio.validate(eg.N()); err != nil {
		return false, err
	}
	if u < 0 || u >= eg.N() || v < 0 || v >= eg.N() {
		return false, errors.New("trimming: node out of range")
	}
	floor := prio[u]
	if prio[v] < floor {
		floor = prio[v]
	}
	// Work on a copy with the link removed; endpoints remain allowed so
	// replacements may pass through them (they outrank the link).
	work := eg.Clone()
	work.RemoveEdge(u, v)
	allowed := allowedAbove(eg.N(), prio, floor, -1)
	restrictToBall(eg, u, opts.LocalHorizon, allowed)
	allowed[u] = true
	allowed[v] = true
	check := func(a, b int) bool {
		jLabels := eg.Labels(a, b) // labels of the trimmed link
		ok := true
		eg.EachNeighbor(a, func(w int) bool {
			if w == b {
				return true
			}
			for _, i := range eg.Labels(w, a) {
				for _, j := range jLabels {
					if i > j {
						continue
					}
					if restrictedEarliest(work, w, b, i, allowed, opts.MaxIntermediates) > j {
						ok = false
						return false
					}
				}
			}
			return true
		})
		return ok
	}
	return check(u, v) && check(v, u), nil
}

func allowedAbove(n int, prio Priorities, floor float64, exclude int) []bool {
	allowed := make([]bool, n)
	for i := range allowed {
		allowed[i] = prio[i] > floor && i != exclude
	}
	return allowed
}

// restrictToBall clears allowed[] outside the k-hop footprint ball around
// center (k <= 0 leaves it untouched — global information).
func restrictToBall(eg *temporal.EG, center, k int, allowed []bool) {
	if k <= 0 {
		return
	}
	dist, _, err := eg.Footprint().BFS(center)
	if err != nil {
		return // out-of-range center: no ball to restrict to
	}
	for v := range allowed {
		if dist[v] < 0 || dist[v] > k {
			allowed[v] = false
		}
	}
}

// Result reports what a Trim pass removed.
type Result struct {
	RemovedNodes []int
	Trimmed      *temporal.EG
}

// TrimNodes applies the node replacement rule iteratively in ascending
// priority order, re-evaluating on the progressively trimmed graph (so a
// node's replacement paths can never route through already-removed nodes).
// The returned EG preserves earliest completion times — hence
// time-i-connectivity — between all surviving node pairs.
func TrimNodes(eg *temporal.EG, prio Priorities, opts Options) (Result, error) {
	if err := prio.validate(eg.N()); err != nil {
		return Result{}, err
	}
	work := eg.Clone()
	order := make([]int, eg.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return prio[order[a]] < prio[order[b]] })
	var removed []int
	for _, u := range order {
		ok, err := CanTrimNode(work, u, prio, opts)
		if err != nil {
			return Result{}, err
		}
		if ok && work.Degree(u) > 0 {
			work.RemoveNode(u)
			removed = append(removed, u)
		}
	}
	sort.Ints(removed)
	return Result{RemovedNodes: removed, Trimmed: work}, nil
}

// IgnoredNeighbors computes, for every node w, the set of neighbors w can
// locally ignore under the directional rule — the per-node routing view of
// the 2-hop local trimming discussion.
func IgnoredNeighbors(eg *temporal.EG, prio Priorities, opts Options) (map[int][]int, error) {
	if err := prio.validate(eg.N()); err != nil {
		return nil, err
	}
	out := make(map[int][]int)
	for w := 0; w < eg.N(); w++ {
		var iterErr error
		eg.EachNeighbor(w, func(u int) bool {
			ok, err := CanIgnoreNeighbor(eg, w, u, prio, opts)
			if err != nil {
				iterErr = err
				return false
			}
			if ok {
				out[w] = append(out[w], u)
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		sort.Ints(out[w])
	}
	return out, nil
}

// VerifyPreservation checks that trimmed preserves, for every pair of
// surviving nodes (those with contacts in trimmed, plus isolated originals)
// and every start time in [0, horizon), both time-t-connectivity and the
// earliest completion time of original. It returns the first discrepancy.
func VerifyPreservation(original, trimmed *temporal.EG, removed []int) error {
	if original.N() != trimmed.N() {
		return errors.New("trimming: node-count mismatch")
	}
	gone := make(map[int]bool, len(removed))
	for _, v := range removed {
		gone[v] = true
	}
	for s := 0; s < original.N(); s++ {
		if gone[s] {
			continue
		}
		for start := 0; start < original.Horizon(); start++ {
			origArr, _, err := original.EarliestArrival(s, start)
			if err != nil {
				return err
			}
			trimArr, _, err := trimmed.EarliestArrival(s, start)
			if err != nil {
				return err
			}
			for d := 0; d < original.N(); d++ {
				if gone[d] || d == s {
					continue
				}
				if origArr[d] != trimArr[d] {
					return fmt.Errorf("trimming: earliest arrival %d->%d at start %d changed: %d -> %d",
						s, d, start, origArr[d], trimArr[d])
				}
			}
		}
	}
	return nil
}

// GabrielGraph returns the Gabriel subgraph of a unit disk graph: edge
// (u,v) survives iff no third point lies strictly inside the circle whose
// diameter is uv. A classic localized static trimming for UDGs (§III-A);
// it contains the Euclidean MST, so connectivity is preserved.
func GabrielGraph(g *graph.Graph, pts []geo.Point) *graph.Graph {
	out := graph.New(g.N())
	for _, e := range g.Edges() {
		mid := geo.Point{X: (pts[e.From].X + pts[e.To].X) / 2, Y: (pts[e.From].Y + pts[e.To].Y) / 2}
		r2 := pts[e.From].Dist(pts[e.To]) / 2
		blocked := false
		for w := range pts {
			if w == e.From || w == e.To {
				continue
			}
			if mid.Dist(pts[w]) < r2-1e-12 {
				blocked = true
				break
			}
		}
		if !blocked {
			_ = out.AddWeightedEdge(e.From, e.To, e.Weight)
		}
	}
	return out
}

// RelativeNeighborhoodGraph returns the RNG subgraph: edge (u,v) survives
// iff no third point w is simultaneously closer to both u and v than they
// are to each other. RNG is a subgraph of the Gabriel graph and still
// contains the MST.
func RelativeNeighborhoodGraph(g *graph.Graph, pts []geo.Point) *graph.Graph {
	out := graph.New(g.N())
	for _, e := range g.Edges() {
		d := pts[e.From].Dist(pts[e.To])
		blocked := false
		for w := range pts {
			if w == e.From || w == e.To {
				continue
			}
			if pts[e.From].Dist(pts[w]) < d-1e-12 && pts[e.To].Dist(pts[w]) < d-1e-12 {
				blocked = true
				break
			}
		}
		if !blocked {
			_ = out.AddWeightedEdge(e.From, e.To, e.Weight)
		}
	}
	return out
}
