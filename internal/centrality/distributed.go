package centrality

import (
	"errors"
	"math"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// The paper's §IV-B lists PageRank and HITS as examples of *dynamic
// labeling*: "a labeling process where several nodes are repeatedly labeled
// a large number of times". This file runs PageRank as an actual
// distributed labeling process on the synchronous kernel — each node keeps
// one float label and re-labels itself every round from its neighbors'
// labels — so the round count (the cost of the dynamic label) is measured
// by the same accounting as every other labeling scheme in the repository.

// DistributedPageRankResult carries the converged labels and the kernel
// cost of obtaining them.
type DistributedPageRankResult struct {
	Scores []float64
	Stats  runtime.Stats
}

// DistributedPageRank runs the damped PageRank iteration on the
// round-synchronous kernel until the per-node label change drops below tol
// (or maxRounds passes). Dangling mass is handled by the standard uniform
// redistribution, which each node can compute from the global constants it
// is assumed to know (n and the damping factor); detecting the dangling
// total requires one extra broadcast per round, counted in the stats by
// the kernel's message model.
func DistributedPageRank(g *graph.Graph, damping float64, maxRounds int, tol float64) (DistributedPageRankResult, error) {
	n := g.N()
	if n == 0 {
		return DistributedPageRankResult{}, errors.New("centrality: empty graph")
	}
	if g.Directed() {
		// The kernel exchanges state along links symmetrically; directed
		// PageRank would need in-neighbor state, which the local model
		// does not deliver. Use PageRank for directed graphs.
		return DistributedPageRankResult{}, errors.New("centrality: distributed PageRank requires an undirected graph")
	}
	if damping <= 0 || damping >= 1 {
		return DistributedPageRankResult{}, errors.New("centrality: damping must be in (0,1)")
	}
	if maxRounds <= 0 {
		maxRounds = 200
	}
	if tol <= 0 {
		tol = 1e-12
	}
	type state struct {
		score float64
		share float64 // score / out-degree, what neighbors consume
		deg   int
	}
	// Dangling redistribution needs the previous round's total dangling
	// mass; with a pure neighbor-local kernel we carry it via a closure
	// over the previous snapshot, recomputed each round (the kernel calls
	// step for node 0 first, so we recompute when v == 0).
	var danglingShare float64
	prev := make([]state, n)
	states, stats, err := runtime.Run(g,
		func(v int) state {
			s := state{score: 1 / float64(n), deg: g.Degree(v)}
			if s.deg > 0 {
				s.share = s.score / float64(s.deg)
			}
			prev[v] = s
			return s
		},
		func(v int, self state, nbrs []state) (state, bool) {
			if v == 0 {
				var dangling float64
				for _, s := range prev {
					if s.deg == 0 {
						dangling += s.score
					}
				}
				danglingShare = damping * dangling / float64(n)
			}
			next := (1-damping)/float64(n) + danglingShare
			for _, nb := range nbrs {
				next += damping * nb.share
			}
			changed := math.Abs(next-self.score) > tol
			out := state{score: next, deg: self.deg}
			if out.deg > 0 {
				out.share = out.score / float64(out.deg)
			}
			prev[v] = out
			return out, changed
		}, maxRounds)
	if err != nil {
		return DistributedPageRankResult{}, err
	}
	res := DistributedPageRankResult{Scores: make([]float64, n), Stats: stats}
	for v, s := range states {
		res.Scores[v] = s.score
	}
	return res, nil
}
