package centrality

import (
	"errors"
	"math"

	"structura/internal/graph"
	"structura/internal/runtime"
)

// The paper's §IV-B lists PageRank and HITS as examples of *dynamic
// labeling*: "a labeling process where several nodes are repeatedly labeled
// a large number of times". This file runs PageRank as an actual
// distributed labeling process on the synchronous kernel — each node keeps
// one float label and re-labels itself every round from its neighbors'
// labels — so the round count (the cost of the dynamic label) is measured
// by the same accounting as every other labeling scheme in the repository.

// DistributedPageRankResult carries the converged labels and the kernel
// cost of obtaining them.
type DistributedPageRankResult struct {
	Scores []float64
	Stats  runtime.Stats
}

// DistributedPageRank runs the damped PageRank iteration on the
// round-synchronous kernel until the per-node label change drops below tol
// (or maxRounds passes). Dangling mass is handled by the standard uniform
// redistribution, computed purely locally: every dangling (degree-0) node
// starts at the uniform score and receives the identical update each
// round, so all dangling scores share one trajectory that any node can
// advance by itself from the global constants it is assumed to know (n,
// the damping factor, and the dangling-node count). The step function is
// therefore pure, as the kernel's parallel execution requires. Extra
// kernel options are passed through to runtime.Run.
func DistributedPageRank(g *graph.Graph, damping float64, maxRounds int, tol float64, opts ...runtime.Option) (DistributedPageRankResult, error) {
	n := g.N()
	if n == 0 {
		return DistributedPageRankResult{}, errors.New("centrality: empty graph")
	}
	if g.Directed() {
		// The kernel exchanges state along links symmetrically; directed
		// PageRank would need in-neighbor state, which the local model
		// does not deliver. Use PageRank for directed graphs.
		return DistributedPageRankResult{}, errors.New("centrality: distributed PageRank requires an undirected graph")
	}
	if damping <= 0 || damping >= 1 {
		return DistributedPageRankResult{}, errors.New("centrality: damping must be in (0,1)")
	}
	if maxRounds <= 0 {
		maxRounds = 200
	}
	if tol <= 0 {
		tol = 1e-12
	}
	type state struct {
		score float64
		share float64 // score / out-degree, what neighbors consume
		deg   int
		dang  float64 // the common score of every dangling node this round
	}
	dangCount := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			dangCount++
		}
	}
	states, stats, err := runtime.Run(g,
		func(v int) state {
			s := state{score: 1 / float64(n), deg: g.Degree(v), dang: 1 / float64(n)}
			if s.deg > 0 {
				s.share = s.score / float64(s.deg)
			}
			return s
		},
		func(v int, self state, nbrs []state) (state, bool) {
			danglingShare := damping * float64(dangCount) * self.dang / float64(n)
			next := (1-damping)/float64(n) + danglingShare
			for _, nb := range nbrs {
				next += damping * nb.share
			}
			if math.Abs(next-self.score) <= tol {
				// Converged within tolerance: freeze the label instead of
				// letting it drift while reporting "unchanged". The kernel's
				// stability detection — and delta-frontier skipping — relies
				// on the change bit being honest: ch == false must mean the
				// state really is the state the neighbors already saw.
				return self, false
			}
			out := state{score: next, deg: self.deg,
				dang: (1-damping)/float64(n) + danglingShare}
			if out.deg > 0 {
				out.share = out.score / float64(out.deg)
			}
			return out, true
		}, append([]runtime.Option{runtime.WithMaxRounds(maxRounds)}, opts...)...)
	if err != nil {
		return DistributedPageRankResult{}, err
	}
	res := DistributedPageRankResult{Scores: make([]float64, n), Stats: stats}
	for v, s := range states {
		res.Scores[v] = s.score
	}
	return res, nil
}
