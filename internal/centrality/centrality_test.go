package centrality

import (
	"math"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

// star5 is a star with center 0 and 4 leaves; the canonical centrality case.
func star5() *graph.Graph { return gen.Star(5) }

func TestDegree(t *testing.T) {
	d := Degree(star5())
	if d[0] != 4 {
		t.Errorf("center degree = %v, want 4", d[0])
	}
	for v := 1; v < 5; v++ {
		if d[v] != 1 {
			t.Errorf("leaf %d degree = %v, want 1", v, d[v])
		}
	}
}

func TestCloseness(t *testing.T) {
	c := Closeness(star5())
	// Center: sum of distances = 4, closeness = 4/4 = 1.
	if math.Abs(c[0]-1) > 1e-12 {
		t.Errorf("center closeness = %v, want 1", c[0])
	}
	// Leaf: distances = 1+2+2+2 = 7, closeness = 4/7.
	if math.Abs(c[1]-4.0/7) > 1e-12 {
		t.Errorf("leaf closeness = %v, want %v", c[1], 4.0/7)
	}
	if c[0] <= c[1] {
		t.Error("center must beat leaves")
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1) // pair; nodes 2,3 isolated
	c := Closeness(g)
	if c[2] != 0 || c[3] != 0 {
		t.Errorf("isolated closeness = %v, want 0", c[2:])
	}
	// Reachable fraction 1/3 scales the pair's scores down.
	want := (1.0 / 3) * (1.0 / 1)
	if math.Abs(c[0]-want) > 1e-12 {
		t.Errorf("pair closeness = %v, want %v", c[0], want)
	}
}

func TestBetweennessStar(t *testing.T) {
	b := Betweenness(star5())
	// Center lies on all C(4,2)=6 leaf pairs' shortest paths.
	if math.Abs(b[0]-6) > 1e-9 {
		t.Errorf("center betweenness = %v, want 6", b[0])
	}
	for v := 1; v < 5; v++ {
		if b[v] != 0 {
			t.Errorf("leaf betweenness = %v, want 0", b[v])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	b := Betweenness(gen.Path(5))
	// Middle of a path 0-1-2-3-4: node 2 covers pairs {0,1}x{3,4} -> 4,
	// plus... full values: b = [0, 3, 4, 3, 0].
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(b[v]-want[v]) > 1e-9 {
			t.Errorf("betweenness[%d] = %v, want %v", v, b[v], want[v])
		}
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: two equal shortest paths split credit.
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(1, 3)
	_ = g.AddEdge(2, 3)
	b := Betweenness(g)
	if math.Abs(b[1]-0.5) > 1e-9 || math.Abs(b[2]-0.5) > 1e-9 {
		t.Errorf("split betweenness = %v, want 0.5 each for 1,2", b)
	}
}

func TestEigenvector(t *testing.T) {
	ev, err := Eigenvector(star5(), 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ev[0] <= ev[1] {
		t.Errorf("center eigenvector %v must beat leaf %v", ev[0], ev[1])
	}
	// Star principal eigenvector: center = 1/sqrt(2), leaves = 1/(2*sqrt(2)).
	if math.Abs(ev[0]-1/math.Sqrt2) > 1e-6 {
		t.Errorf("center = %v, want %v", ev[0], 1/math.Sqrt2)
	}
	if _, err := Eigenvector(graph.New(0), 10, 0); err == nil {
		t.Error("empty graph should error")
	}
	if _, err := Eigenvector(graph.New(3), 10, 0); err == nil {
		t.Error("edgeless graph should error (iteration collapses)")
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	r := stats.NewRand(1)
	g, err := gen.BarabasiAlbert(r, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, 0.85, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sum = %v, want 1", sum)
	}
}

func TestPageRankDangling(t *testing.T) {
	// Directed 0->1, 1 dangles.
	g := graph.NewDirected(2)
	_ = g.AddEdge(0, 1)
	pr, err := PageRank(g, 0.85, 200, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("dangling PageRank sum = %v, want 1", sum)
	}
	if pr[1] <= pr[0] {
		t.Errorf("sink should outrank source: %v", pr)
	}
}

func TestPageRankErrors(t *testing.T) {
	if _, err := PageRank(graph.New(0), 0.85, 10, 0); err == nil {
		t.Error("empty graph should error")
	}
	if _, err := PageRank(graph.New(2), 1.5, 10, 0); err == nil {
		t.Error("bad damping should error")
	}
}

func TestPageRankStarRanking(t *testing.T) {
	pr, err := PageRank(star5(), 0.85, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	rank := Ranking(pr)
	if rank[0] != 0 {
		t.Errorf("star center should rank first, got %v", rank)
	}
}

func TestHITS(t *testing.T) {
	// Bipartite-ish: hubs 0,1 point to authorities 2,3.
	g := graph.NewDirected(4)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	_ = g.AddEdge(1, 2)
	hubs, auths, err := HITS(g, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if hubs[0] <= hubs[1] {
		t.Errorf("node 0 (2 outlinks) should be the better hub: %v", hubs)
	}
	if auths[2] <= auths[3] {
		t.Errorf("node 2 (2 inlinks) should be the better authority: %v", auths)
	}
	if auths[0] != 0 || hubs[2] != 0 {
		t.Errorf("pure hubs/auths should have zero opposite scores: hubs=%v auths=%v", hubs, auths)
	}
	if _, _, err := HITS(graph.New(0), 10, 0); err == nil {
		t.Error("empty graph should error")
	}
}

func TestRankingStability(t *testing.T) {
	rank := Ranking([]float64{1, 3, 3, 0})
	want := []int{1, 2, 0, 3}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("Ranking = %v, want %v", rank, want)
		}
	}
	if len(Ranking(nil)) != 0 {
		t.Error("empty ranking should be empty")
	}
}

// Property-style check: on vertex-transitive graphs every node has equal
// centrality for all measures.
func TestVertexTransitiveEquality(t *testing.T) {
	g := gen.Ring(8)
	checkAllEqual := func(name string, xs []float64) {
		t.Helper()
		for i := 1; i < len(xs); i++ {
			if math.Abs(xs[i]-xs[0]) > 1e-6 {
				t.Errorf("%s not uniform on ring: %v", name, xs)
				return
			}
		}
	}
	checkAllEqual("degree", Degree(g))
	checkAllEqual("closeness", Closeness(g))
	checkAllEqual("betweenness", Betweenness(g))
	ev, err := Eigenvector(g, 500, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	checkAllEqual("eigenvector", ev)
	pr, err := PageRank(g, 0.85, 200, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	checkAllEqual("pagerank", pr)
}

func TestBetweennessDirected(t *testing.T) {
	// Directed path 0->1->2: node 1 bridges exactly one ordered pair.
	g := graph.NewDirected(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	b := Betweenness(g)
	if math.Abs(b[1]-1) > 1e-9 {
		t.Errorf("directed betweenness[1] = %v, want 1", b[1])
	}
}
