package centrality

import (
	"math"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/stats"
)

func TestDistributedPageRankMatchesCentralized(t *testing.T) {
	r := stats.NewRand(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(r, 60, 0.1)
		want, err := PageRank(g, 0.85, 500, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DistributedPageRank(g, 0.85, 500, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if math.Abs(want[v]-got.Scores[v]) > 1e-9 {
				t.Fatalf("trial %d node %d: centralized %v vs distributed %v",
					trial, v, want[v], got.Scores[v])
			}
		}
		if !got.Stats.Stable {
			t.Fatal("distributed PageRank did not stabilize")
		}
	}
}

func TestDistributedPageRankIsADynamicLabel(t *testing.T) {
	// §IV-B: dynamic labels re-label nodes "a large number of times" —
	// many rounds, unlike static labelings that finish in O(1) or O(log n).
	// A star starts far from its fixed point, so convergence to 1e-12
	// takes on the order of log(tol)/log(damping) rounds.
	g := gen.Star(40)
	res, err := DistributedPageRank(g, 0.85, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds < 10 {
		t.Errorf("rounds = %d; a dynamic label should take many rounds", res.Stats.Rounds)
	}
	if res.Stats.Messages != res.Stats.Rounds*2*g.M() {
		t.Errorf("message accounting off: %d", res.Stats.Messages)
	}
	if res.Scores[0] <= res.Scores[1] {
		t.Error("star center must outrank leaves")
	}
	// The ring, by contrast, starts exactly at its uniform fixed point and
	// the labels never change.
	ringRes, err := DistributedPageRank(gen.Ring(40), 0.85, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range ringRes.Scores {
		if math.Abs(s-1.0/40) > 1e-9 {
			t.Fatalf("ring score[%d] = %v, want 1/40", v, s)
		}
	}
}

func TestDistributedPageRankDangling(t *testing.T) {
	// An undirected graph with an isolated node: its mass redistributes.
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	res, err := DistributedPageRank(g, 0.85, 500, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
	want, err := PageRank(g, 0.85, 500, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(want[v]-res.Scores[v]) > 1e-9 {
			t.Fatalf("node %d: %v vs %v", v, want[v], res.Scores[v])
		}
	}
}

func TestDistributedPageRankValidation(t *testing.T) {
	if _, err := DistributedPageRank(graph.New(0), 0.85, 10, 0); err == nil {
		t.Error("empty graph should error")
	}
	if _, err := DistributedPageRank(graph.NewDirected(3), 0.85, 10, 0); err == nil {
		t.Error("directed graph should error")
	}
	if _, err := DistributedPageRank(graph.New(3), 2, 10, 0); err == nil {
		t.Error("bad damping should error")
	}
}
