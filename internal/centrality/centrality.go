// Package centrality implements the node-importance measures the paper
// surveys in §III (degree, closeness, betweenness, eigenvector) and the two
// dynamic-labeling ranking processes of §IV-B (PageRank and HITS).
//
// The paper's point is that these are *single-node* measures, in contrast to
// the network-wide structures structura uncovers; they are implemented here
// both as baselines and because two of them (degree, betweenness) are used
// as trimming priorities in §III-A.
package centrality

import (
	"errors"
	"math"
	"slices"

	"structura/internal/graph"
)

// Degree returns each node's degree (out-degree for directed graphs).
func Degree(g *graph.Graph) []float64 {
	out := make([]float64, g.N())
	for v := range out {
		out[v] = float64(g.Degree(v))
	}
	return out
}

// InDegree returns each node's in-degree (equal to Degree for undirected
// graphs), served from the graph's bulk in-degree array in O(n) rather
// than an O(n+m) scan per node.
func InDegree(g *graph.Graph) []float64 {
	degs := g.InDegrees()
	out := make([]float64, len(degs))
	for v, d := range degs {
		out[v] = float64(d)
	}
	return out
}

// Closeness returns, for each node, (n-1) divided by the sum of hop
// distances to all reachable nodes, scaled by the reachable fraction
// (the Wasserman–Faust generalization, well-defined on disconnected
// graphs). Isolated nodes get 0.
func Closeness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	c := g.Freeze()
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		queue, _ = c.BFSInto(v, dist, queue) // v ranges over valid nodes
		var sum, reach float64
		for u, d := range dist {
			if u == v || d < 0 {
				continue
			}
			sum += float64(d)
			reach++
		}
		if sum > 0 {
			out[v] = (reach / float64(n-1)) * (reach / sum)
		}
	}
	return out
}

// Betweenness returns each node's (unnormalized) shortest-path betweenness
// via Brandes' algorithm on unweighted graphs. For undirected graphs each
// pair is counted once (values halved, per convention).
func Betweenness(g *graph.Graph) []float64 {
	n := g.N()
	c := g.Freeze()
	cb := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	stack := make([]int, 0, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		for i := 0; i < n; i++ {
			preds[i] = preds[i][:0]
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			stack = append(stack, v)
			for _, w := range c.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, int(w))
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	if !g.Directed() {
		for i := range cb {
			cb[i] /= 2
		}
	}
	return cb
}

// Eigenvector returns the eigenvector centrality (power iteration on the
// adjacency matrix, L2-normalized). It errors if iteration fails to make
// progress (e.g. an empty graph).
func Eigenvector(g *graph.Graph, iters int, tol float64) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	if g.M() == 0 {
		return nil, errors.New("centrality: eigenvector undefined on an edgeless graph")
	}
	if iters <= 0 {
		iters = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	c := g.Freeze()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		// Iterate with (A + I) so the principal eigenvalue strictly
		// dominates even on bipartite graphs (plain power iteration
		// oscillates there); the shift leaves eigenvectors unchanged.
		copy(next, x)
		for v := 0; v < n; v++ {
			for _, w := range c.Neighbors(v) {
				next[w] += x[v]
			}
		}
		var norm float64
		for _, t := range next {
			norm += t * t
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, errors.New("centrality: eigenvector iteration collapsed (no edges)")
		}
		var diff float64
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		copy(x, next)
		if diff < tol {
			break
		}
	}
	return x, nil
}

// PageRank runs the classic damped random-surfer iteration until the L1
// change is below tol or iters passes elapse. Dangling mass is spread
// uniformly. The result sums to 1.
func PageRank(g *graph.Graph, damping float64, iters int, tol float64) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	if damping <= 0 || damping >= 1 {
		return nil, errors.New("centrality: damping must be in (0,1)")
	}
	if iters <= 0 {
		iters = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	c := g.Freeze()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		var dangling float64
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			nbrs := c.Neighbors(v)
			if len(nbrs) == 0 {
				dangling += pr[v]
				continue
			}
			share := damping * pr[v] / float64(len(nbrs))
			for _, w := range nbrs {
				next[w] += share
			}
		}
		spread := damping * dangling / float64(n)
		var diff float64
		for i := range next {
			next[i] += spread
			diff += math.Abs(next[i] - pr[i])
		}
		copy(pr, next)
		if diff < tol {
			break
		}
	}
	return pr, nil
}

// HITS returns hub and authority scores (Kleinberg's algorithm), each
// L2-normalized, after iters rounds or convergence below tol.
func HITS(g *graph.Graph, iters int, tol float64) (hubs, auths []float64, err error) {
	n := g.N()
	if n == 0 {
		return nil, nil, errors.New("centrality: empty graph")
	}
	if iters <= 0 {
		iters = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	c := g.Freeze()
	hubs = make([]float64, n)
	auths = make([]float64, n)
	for i := range hubs {
		hubs[i] = 1
	}
	newAuth := make([]float64, n)
	newHub := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range newAuth {
			newAuth[i] = 0
		}
		for v := 0; v < n; v++ {
			for _, w := range c.Neighbors(v) {
				newAuth[w] += hubs[v]
			}
		}
		normalizeL2(newAuth)
		for i := range newHub {
			newHub[i] = 0
		}
		for v := 0; v < n; v++ {
			var h float64
			for _, w := range c.Neighbors(v) {
				h += newAuth[w]
			}
			newHub[v] = h
		}
		normalizeL2(newHub)
		var diff float64
		for i := range hubs {
			diff += math.Abs(newHub[i]-hubs[i]) + math.Abs(newAuth[i]-auths[i])
		}
		copy(hubs, newHub)
		copy(auths, newAuth)
		if diff < tol {
			break
		}
	}
	return hubs, auths, nil
}

func normalizeL2(xs []float64) {
	var norm float64
	for _, x := range xs {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range xs {
		xs[i] /= norm
	}
}

// Ranking returns node IDs sorted by descending score (stable: ties by ID).
// IDs are unique, so (score desc, id asc) is a total order — an unstable
// sort under that comparator yields the stable result at a fraction of the
// cost, which matters because every epoch publish re-ranks the full graph.
func Ranking(scores []float64) []int {
	ids := make([]int, len(scores))
	for i := range ids {
		ids[i] = i
	}
	slices.SortFunc(ids, func(a, b int) int {
		if scores[a] != scores[b] {
			if scores[a] > scores[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	return ids
}
