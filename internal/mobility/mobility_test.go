package mobility

import (
	"math"
	"testing"

	"structura/internal/stats"
	"structura/internal/temporal"
)

func waypointCfg() WaypointConfig {
	return WaypointConfig{
		N: 20, Width: 100, Height: 100,
		MinSpeed: 1, MaxSpeed: 5, Pause: 2,
		Steps: 200, Range: 15,
	}
}

func TestWaypointValidation(t *testing.T) {
	r := stats.NewRand(1)
	bad := []func(*WaypointConfig){
		func(c *WaypointConfig) { c.N = 0 },
		func(c *WaypointConfig) { c.Width = 0 },
		func(c *WaypointConfig) { c.Height = -1 },
		func(c *WaypointConfig) { c.MinSpeed = 0 },
		func(c *WaypointConfig) { c.MaxSpeed = 0.5 },
		func(c *WaypointConfig) { c.Pause = -1 },
		func(c *WaypointConfig) { c.Steps = 0 },
		func(c *WaypointConfig) { c.Range = 0 },
	}
	for i, mutate := range bad {
		cfg := waypointCfg()
		mutate(&cfg)
		if _, err := RandomWaypoint(r, cfg); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestRandomWaypointStaysInField(t *testing.T) {
	r := stats.NewRand(2)
	cfg := waypointCfg()
	tr, err := RandomWaypoint(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Positions) != cfg.Steps {
		t.Fatalf("steps = %d", len(tr.Positions))
	}
	for t0, snap := range tr.Positions {
		if len(snap) != cfg.N {
			t.Fatalf("snapshot %d has %d nodes", t0, len(snap))
		}
		for _, p := range snap {
			if p.X < 0 || p.X > cfg.Width || p.Y < 0 || p.Y > cfg.Height {
				t.Fatalf("node out of field at %v", p)
			}
		}
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	r := stats.NewRand(3)
	cfg := waypointCfg()
	tr, _ := RandomWaypoint(r, cfg)
	for t0 := 1; t0 < len(tr.Positions); t0++ {
		for v := 0; v < cfg.N; v++ {
			d := tr.Positions[t0-1][v].Dist(tr.Positions[t0][v])
			if d > cfg.MaxSpeed+1e-9 {
				t.Fatalf("node %d moved %v > max speed %v in one unit", v, d, cfg.MaxSpeed)
			}
		}
	}
}

func TestTraceEG(t *testing.T) {
	r := stats.NewRand(4)
	tr, err := RandomWaypoint(r, waypointCfg())
	if err != nil {
		t.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		t.Fatal(err)
	}
	if eg.N() != 20 || eg.Horizon() != 200 {
		t.Fatalf("EG dims = %d, %d", eg.N(), eg.Horizon())
	}
	// Spot-check: every EG contact matches a within-range pair.
	for u := 0; u < eg.N(); u++ {
		for _, v := range eg.Neighbors(u) {
			for _, tu := range eg.Labels(u, v) {
				d := tr.Positions[tu][u].Dist(tr.Positions[tu][v])
				if d > tr.Range {
					t.Fatalf("contact (%d,%d,%d) at distance %v > range", u, v, tu, d)
				}
			}
		}
	}
	empty := &Trace{}
	if eg2, err := empty.EG(); err != nil || eg2.N() != 0 {
		t.Error("empty trace should yield empty EG")
	}
}

func TestExtractContacts(t *testing.T) {
	eg, _ := temporal.New(2, 20)
	// Contact runs: [2,4] (duration 3), gap 5, [9,9] (duration 1).
	for _, tu := range []int{2, 3, 4, 9} {
		_ = eg.AddContact(0, 1, tu)
	}
	cs := ExtractContacts(eg)
	if len(cs.Durations) != 2 || cs.Durations[0] != 3 || cs.Durations[1] != 1 {
		t.Errorf("durations = %v, want [3 1]", cs.Durations)
	}
	if len(cs.InterContacts) != 1 || cs.InterContacts[0] != 5 {
		t.Errorf("inter-contacts = %v, want [5]", cs.InterContacts)
	}
	if got := ExtractContacts(mustEG(t, 3, 5)); len(got.Durations) != 0 {
		t.Error("no contacts should yield no samples")
	}
}

func mustEG(t *testing.T, n, h int) *temporal.EG {
	t.Helper()
	eg, err := temporal.New(n, h)
	if err != nil {
		t.Fatal(err)
	}
	return eg
}

func TestEdgeMarkovianValidation(t *testing.T) {
	r := stats.NewRand(5)
	if _, err := EdgeMarkovian(r, EdgeMarkovianConfig{N: 0, P: 0.1, Q: 0.1, Steps: 5}); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := EdgeMarkovian(r, EdgeMarkovianConfig{N: 5, P: 1.5, Q: 0.1, Steps: 5}); err == nil {
		t.Error("bad P should error")
	}
	if _, err := EdgeMarkovian(r, EdgeMarkovianConfig{N: 5, P: 0.1, Q: 0.1, Steps: 5, StartDensity: 2}); err == nil {
		t.Error("StartDensity > 1 should error")
	}
}

func TestEdgeMarkovianStationaryDensity(t *testing.T) {
	r := stats.NewRand(6)
	cfg := EdgeMarkovianConfig{N: 40, P: 0.3, Q: 0.1, Steps: 200, StartDensity: -1}
	eg, err := EdgeMarkovian(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stationary density Q/(P+Q) = 0.25: measure the average snapshot
	// density over time.
	pairs := cfg.N * (cfg.N - 1) / 2
	var density float64
	for tu := 0; tu < cfg.Steps; tu++ {
		density += float64(eg.Snapshot(tu).M()) / float64(pairs)
	}
	density /= float64(cfg.Steps)
	want := cfg.Q / (cfg.P + cfg.Q)
	if math.Abs(density-want) > 0.02 {
		t.Errorf("mean density = %v, want ~%v", density, want)
	}
}

func TestEdgeMarkovianExtremes(t *testing.T) {
	r := stats.NewRand(7)
	// P=1, Q=1: edges alternate; density always positive after t=0.
	eg, err := EdgeMarkovian(r, EdgeMarkovianConfig{N: 10, P: 1, Q: 1, Steps: 4, StartDensity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if eg.Snapshot(0).M() != 0 {
		t.Error("start density 0 should make t=0 edgeless")
	}
	if eg.Snapshot(1).M() != 45 {
		t.Errorf("Q=1 should birth all edges at t=1, got %d", eg.Snapshot(1).M())
	}
	if eg.Snapshot(2).M() != 0 {
		t.Errorf("P=1 should kill all edges at t=2, got %d", eg.Snapshot(2).M())
	}
	// P+Q = 0 with StartDensity -1: density 0 everywhere, no error.
	eg2, err := EdgeMarkovian(r, EdgeMarkovianConfig{N: 5, P: 0, Q: 0, Steps: 3, StartDensity: -1})
	if err != nil || eg2.ContactCount() != 0 {
		t.Error("frozen empty process should stay empty")
	}
}

func TestHammingDistance(t *testing.T) {
	tests := []struct {
		a, b FeatureProfile
		want int
	}{
		{FeatureProfile{1, 2, 3}, FeatureProfile{1, 2, 3}, 0},
		{FeatureProfile{1, 2, 3}, FeatureProfile{1, 9, 3}, 1},
		{FeatureProfile{1, 2}, FeatureProfile{3, 4}, 2},
		{FeatureProfile{1, 2, 3}, FeatureProfile{1, 2}, 1},
		{FeatureProfile{1}, FeatureProfile{1, 2, 3}, 2},
		{nil, nil, 0},
	}
	for _, tc := range tests {
		if got := HammingDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("Hamming(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFeatureContactsValidation(t *testing.T) {
	r := stats.NewRand(8)
	profiles := []FeatureProfile{{0, 0}, {0, 1}}
	if _, err := FeatureContacts(r, FeatureContactConfig{Profiles: nil, BaseProb: 0.5, Decay: 0.5, Steps: 5}); err == nil {
		t.Error("no profiles should error")
	}
	if _, err := FeatureContacts(r, FeatureContactConfig{Profiles: profiles, BaseProb: 2, Decay: 0.5, Steps: 5}); err == nil {
		t.Error("bad BaseProb should error")
	}
	if _, err := FeatureContacts(r, FeatureContactConfig{Profiles: profiles, BaseProb: 0.5, Decay: 0, Steps: 5}); err == nil {
		t.Error("bad Decay should error")
	}
	if _, err := FeatureContacts(r, FeatureContactConfig{Profiles: profiles, BaseProb: 0.5, Decay: 0.5, Steps: 0}); err == nil {
		t.Error("no steps should error")
	}
}

func TestFeatureContactsFrequencyDecays(t *testing.T) {
	// The defining property: mean contact frequency strictly decreases
	// with feature distance.
	r := stats.NewRand(9)
	var profiles []FeatureProfile
	for g := 0; g < 2; g++ {
		for o := 0; o < 2; o++ {
			for c := 0; c < 3; c++ {
				// Several individuals per feature combination.
				for k := 0; k < 3; k++ {
					profiles = append(profiles, FeatureProfile{g, o, c})
				}
			}
		}
	}
	cfg := FeatureContactConfig{Profiles: profiles, BaseProb: 0.4, Decay: 0.4, Steps: 400}
	eg, err := FeatureContacts(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	freqs := ContactFrequencies(eg, profiles)
	var prev float64 = math.Inf(1)
	for d := 0; d <= 3; d++ {
		samples, ok := freqs[d]
		if !ok {
			t.Fatalf("no pairs at feature distance %d", d)
		}
		mean := stats.Mean(samples)
		if mean >= prev {
			t.Errorf("mean contact frequency at distance %d (%v) did not decay (prev %v)", d, mean, prev)
		}
		prev = mean
	}
}

func TestFeatureContactsExpectedRates(t *testing.T) {
	r := stats.NewRand(10)
	profiles := []FeatureProfile{{0}, {0}, {1}}
	cfg := FeatureContactConfig{Profiles: profiles, BaseProb: 0.5, Decay: 0.5, Steps: 2000}
	eg, err := FeatureContacts(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pair (0,1): distance 0 -> rate 0.5; pairs (0,2),(1,2): distance 1 -> 0.25.
	rate01 := float64(len(eg.Labels(0, 1))) / float64(cfg.Steps)
	rate02 := float64(len(eg.Labels(0, 2))) / float64(cfg.Steps)
	if math.Abs(rate01-0.5) > 0.05 {
		t.Errorf("rate(0,1) = %v, want ~0.5", rate01)
	}
	if math.Abs(rate02-0.25) > 0.05 {
		t.Errorf("rate(0,2) = %v, want ~0.25", rate02)
	}
}

func TestWaypointContactStatsNonEmpty(t *testing.T) {
	r := stats.NewRand(11)
	cfg := waypointCfg()
	tr, err := RandomWaypoint(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		t.Fatal(err)
	}
	cs := ExtractContacts(eg)
	if len(cs.Durations) == 0 {
		t.Fatal("waypoint trace should produce contacts")
	}
	for _, d := range cs.Durations {
		if d < 1 {
			t.Fatalf("contact duration %v < 1", d)
		}
	}
	for _, ic := range cs.InterContacts {
		if ic < 2 {
			t.Fatalf("inter-contact %v < 2 (gap must skip at least one unit)", ic)
		}
	}
}

func TestOnlineSessions(t *testing.T) {
	eg, _ := temporal.New(3, 10)
	// Node 0: contacts at 1,2,3 and 7 -> sessions [1,3] and [7,7].
	_ = eg.AddContact(0, 1, 1)
	_ = eg.AddContact(0, 1, 2)
	_ = eg.AddContact(0, 2, 3)
	_ = eg.AddContact(0, 1, 7)
	f := OnlineSessions(eg)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var sessions0 int
	for _, iv := range f.Intervals {
		if iv.Owner == 0 {
			sessions0++
			if iv.Start == 1 && iv.End != 3 {
				t.Errorf("first session = [%g,%g], want [1,3]", iv.Start, iv.End)
			}
		}
	}
	if sessions0 != 2 {
		t.Errorf("node 0 has %d sessions, want 2", sessions0)
	}
	// Simultaneously-online nodes are adjacent in the interval graph.
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("nodes 0 and 1 are online together")
	}
}

func TestOnlineSessionsFromTrace(t *testing.T) {
	// End to end: waypoint trace -> EG -> interval hypergraph of
	// co-presence.
	r := stats.NewRand(20)
	tr, err := RandomWaypoint(r, WaypointConfig{
		N: 15, Width: 60, Height: 60,
		MinSpeed: 1, MaxSpeed: 4, Pause: 1,
		Steps: 80, Range: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	eg, err := tr.EG()
	if err != nil {
		t.Fatal(err)
	}
	f := OnlineSessions(eg)
	hes, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(hes) == 0 {
		t.Fatal("a dense trace must produce co-presence hyperedges")
	}
	// Every hyperedge member must really be online at a shared time:
	// weak sanity — all owners valid.
	for _, he := range hes {
		for _, v := range he {
			if v < 0 || v >= eg.N() {
				t.Fatalf("hyperedge member %d out of range", v)
			}
		}
	}
}
