// Package mobility provides the dynamic-network substrates of §II-B and
// §III-C: random-waypoint node mobility with contact extraction (contact
// duration and inter-contact time distributions), the two-state
// edge-Markovian dynamic-graph process, and a social-feature contact model
// in which pairwise contact frequency decays with feature distance — the
// property [21] validated on the INFOCOM'06 and MIT Reality Mining traces
// and the documented substitution for those offline-unavailable datasets.
package mobility

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"structura/internal/geo"
	"structura/internal/intervals"
	"structura/internal/temporal"
)

// WaypointConfig parameterizes a random-waypoint simulation.
type WaypointConfig struct {
	N        int     // nodes
	Width    float64 // field width
	Height   float64 // field height
	MinSpeed float64 // uniform speed draw lower bound (> 0)
	MaxSpeed float64 // upper bound (>= MinSpeed)
	Pause    float64 // pause time at each waypoint, in time units
	Steps    int     // number of discrete time units to simulate
	Range    float64 // communication radius for contact extraction
}

func (c WaypointConfig) validate() error {
	switch {
	case c.N < 1:
		return errors.New("mobility: need N >= 1")
	case c.Width <= 0 || c.Height <= 0:
		return errors.New("mobility: field must have positive area")
	case c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed:
		return errors.New("mobility: need 0 < MinSpeed <= MaxSpeed")
	case c.Pause < 0:
		return errors.New("mobility: negative pause")
	case c.Steps < 1:
		return errors.New("mobility: need Steps >= 1")
	case c.Range <= 0:
		return errors.New("mobility: need positive Range")
	}
	return nil
}

// Trace is a discrete-time position trace: Positions[t][v] is node v's
// location at time unit t.
type Trace struct {
	Positions [][]geo.Point
	Range     float64
}

// RandomWaypoint simulates the classic random-waypoint model: each node
// repeatedly picks a uniform destination, moves toward it with a uniform
// random speed, pauses, and repeats.
func RandomWaypoint(r *rand.Rand, cfg WaypointConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type state struct {
		pos   geo.Point
		dst   geo.Point
		speed float64
		pause float64
	}
	nodes := make([]state, cfg.N)
	newLeg := func(s *state) {
		s.dst = geo.Point{X: r.Float64() * cfg.Width, Y: r.Float64() * cfg.Height}
		s.speed = cfg.MinSpeed + r.Float64()*(cfg.MaxSpeed-cfg.MinSpeed)
		s.pause = cfg.Pause
	}
	for i := range nodes {
		nodes[i].pos = geo.Point{X: r.Float64() * cfg.Width, Y: r.Float64() * cfg.Height}
		newLeg(&nodes[i])
	}
	tr := &Trace{Positions: make([][]geo.Point, cfg.Steps), Range: cfg.Range}
	for t := 0; t < cfg.Steps; t++ {
		snapshot := make([]geo.Point, cfg.N)
		for i := range nodes {
			s := &nodes[i]
			snapshot[i] = s.pos
			// Advance one time unit.
			d := s.pos.Dist(s.dst)
			if d <= s.speed {
				s.pos = s.dst
				if s.pause > 0 {
					s.pause--
					continue
				}
				newLeg(s)
				continue
			}
			frac := s.speed / d
			s.pos = geo.Point{
				X: s.pos.X + (s.dst.X-s.pos.X)*frac,
				Y: s.pos.Y + (s.dst.Y-s.pos.Y)*frac,
			}
		}
		tr.Positions[t] = snapshot
	}
	return tr, nil
}

// EG converts the trace into a time-evolving graph: a contact (u,v,t)
// exists whenever u and v are within Range at time t.
func (tr *Trace) EG() (*temporal.EG, error) {
	if len(tr.Positions) == 0 {
		return temporal.New(0, 0)
	}
	n := len(tr.Positions[0])
	eg, err := temporal.New(n, len(tr.Positions))
	if err != nil {
		return nil, err
	}
	for t, pts := range tr.Positions {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if pts[u].Dist(pts[v]) <= tr.Range {
					if err := eg.AddContact(u, v, t); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return eg, nil
}

// ContactStats holds the two distributions the system community measures on
// mobility traces (§II-B): contact durations and inter-contact times, in
// time units.
type ContactStats struct {
	Durations     []float64
	InterContacts []float64
}

// ExtractContacts computes contact-duration and inter-contact-time samples
// over all node pairs of a time-evolving graph: a contact is a maximal run
// of consecutive time units during which the pair is linked; the
// inter-contact time is the gap between consecutive contacts of a pair.
func ExtractContacts(eg *temporal.EG) ContactStats {
	var cs ContactStats
	n := eg.N()
	for u := 0; u < n; u++ {
		eg.EachNeighbor(u, func(v int) bool {
			if v <= u {
				return true
			}
			labels := eg.Labels(u, v)
			if len(labels) == 0 {
				return true
			}
			runStart := labels[0]
			prev := labels[0]
			for _, t := range labels[1:] {
				if t == prev+1 {
					prev = t
					continue
				}
				cs.Durations = append(cs.Durations, float64(prev-runStart+1))
				cs.InterContacts = append(cs.InterContacts, float64(t-prev))
				runStart, prev = t, t
			}
			cs.Durations = append(cs.Durations, float64(prev-runStart+1))
			return true
		})
	}
	return cs
}

// EdgeMarkovianConfig parameterizes the two-state edge-Markovian dynamic
// graph of §II-B: an existing edge dies with probability P, a missing edge
// is born with probability Q, independently per time unit.
type EdgeMarkovianConfig struct {
	N     int
	P     float64 // death probability
	Q     float64 // birth probability
	Steps int
	// StartDensity is the probability an edge exists at time 0. The
	// stationary density is Q/(P+Q); pass a negative value to start there.
	StartDensity float64
}

// EdgeMarkovian simulates the process and returns the resulting EG.
func EdgeMarkovian(r *rand.Rand, cfg EdgeMarkovianConfig) (*temporal.EG, error) {
	if cfg.N < 1 || cfg.Steps < 1 {
		return nil, errors.New("mobility: need N >= 1 and Steps >= 1")
	}
	if cfg.P < 0 || cfg.P > 1 || cfg.Q < 0 || cfg.Q > 1 {
		return nil, errors.New("mobility: P and Q must be probabilities")
	}
	start := cfg.StartDensity
	if start < 0 {
		if cfg.P+cfg.Q == 0 {
			start = 0
		} else {
			start = cfg.Q / (cfg.P + cfg.Q)
		}
	}
	if start > 1 {
		return nil, errors.New("mobility: StartDensity > 1")
	}
	eg, err := temporal.New(cfg.N, cfg.Steps)
	if err != nil {
		return nil, err
	}
	alive := make([]bool, cfg.N*cfg.N)
	idx := func(u, v int) int { return u*cfg.N + v }
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			alive[idx(u, v)] = r.Float64() < start
		}
	}
	for t := 0; t < cfg.Steps; t++ {
		for u := 0; u < cfg.N; u++ {
			for v := u + 1; v < cfg.N; v++ {
				i := idx(u, v)
				if alive[i] {
					if err := eg.AddContact(u, v, t); err != nil {
						return nil, err
					}
					if r.Float64() < cfg.P {
						alive[i] = false
					}
				} else if r.Float64() < cfg.Q {
					alive[i] = true
				}
			}
		}
	}
	return eg, nil
}

// FeatureProfile is a node's social-feature vector (gender, occupation,
// nationality, ... as small categorical codes), per §III-C.
type FeatureProfile []int

// HammingDistance counts differing features between two equal-length
// profiles.
func HammingDistance(a, b FeatureProfile) int {
	d := 0
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			d++
		}
	}
	if len(b) > len(a) {
		d += len(b) - len(a)
	}
	return d
}

// FeatureContactConfig parameterizes the social-feature contact model: at
// each time unit, each pair (u,v) is in contact with probability
// BaseProb * Decay^HammingDistance(u,v) — closer feature distance, higher
// contact frequency, the property confirmed on real traces in [21].
type FeatureContactConfig struct {
	Profiles []FeatureProfile
	BaseProb float64 // contact probability at feature distance 0
	Decay    float64 // multiplicative decay per unit of feature distance, in (0,1]
	Steps    int
}

// FeatureContacts simulates the model, returning the contact EG.
func FeatureContacts(r *rand.Rand, cfg FeatureContactConfig) (*temporal.EG, error) {
	n := len(cfg.Profiles)
	if n < 1 || cfg.Steps < 1 {
		return nil, errors.New("mobility: need profiles and Steps >= 1")
	}
	if cfg.BaseProb < 0 || cfg.BaseProb > 1 {
		return nil, errors.New("mobility: BaseProb must be a probability")
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		return nil, errors.New("mobility: Decay must be in (0,1]")
	}
	eg, err := temporal.New(n, cfg.Steps)
	if err != nil {
		return nil, err
	}
	// Precompute pair probabilities.
	prob := make([]float64, n*n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := HammingDistance(cfg.Profiles[u], cfg.Profiles[v])
			prob[u*n+v] = cfg.BaseProb * math.Pow(cfg.Decay, float64(d))
		}
	}
	for t := 0; t < cfg.Steps; t++ {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < prob[u*n+v] {
					if err := eg.AddContact(u, v, t); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return eg, nil
}

// ContactFrequencies returns, for every pair, the observed contact count
// keyed by feature distance — used to verify the model reproduces the
// "closer distance, higher frequency" property.
func ContactFrequencies(eg *temporal.EG, profiles []FeatureProfile) map[int][]float64 {
	out := make(map[int][]float64)
	n := eg.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := HammingDistance(profiles[u], profiles[v])
			out[d] = append(out[d], float64(len(eg.Labels(u, v))))
		}
	}
	return out
}

// OnlineSessions bridges §II-B back to §II-A: each node's "online sessions"
// are the maximal runs of consecutive time units during which it has at
// least one contact, returned as a (multiple-)interval family. The
// resulting interval graph connects nodes that are online simultaneously —
// the online-social-network reading of Fig. 1 extracted from a mobility
// trace — and the family's hypergraph gives the simultaneous-presence
// hyperedges whose cardinality distribution the paper asks about.
func OnlineSessions(eg *temporal.EG) intervals.Family {
	f := intervals.Family{NumVertices: eg.N()}
	for v := 0; v < eg.N(); v++ {
		active := map[int]bool{}
		eg.EachNeighbor(v, func(u int) bool {
			for _, t := range eg.Labels(v, u) {
				active[t] = true
			}
			return true
		})
		if len(active) == 0 {
			continue
		}
		times := make([]int, 0, len(active))
		for t := range active {
			times = append(times, t)
		}
		sort.Ints(times)
		start := times[0]
		prev := times[0]
		for _, t := range times[1:] {
			if t == prev+1 {
				prev = t
				continue
			}
			f.Intervals = append(f.Intervals, intervals.Interval{
				Start: float64(start), End: float64(prev), Owner: v,
			})
			start, prev = t, t
		}
		f.Intervals = append(f.Intervals, intervals.Interval{
			Start: float64(start), End: float64(prev), Owner: v,
		})
	}
	return f
}
