package intervals

import (
	"structura/internal/graph"
)

// The paper (§II-A): "Not all graphs are interval graphs ... if G is an
// interval graph, it must be a chordal graph. The impossibility of a large
// chordless cycle is that time is linear, not circular." Chordality is
// necessary but not sufficient; the classical characterization
// (Lekkerkerker–Boland 1962) adds that an interval graph contains no
// asteroidal triple: three vertices such that every pair is joined by a
// path avoiding the closed neighborhood of the third (three "directions"
// that a linear time axis cannot host). This file implements the full
// recognizer.

// AsteroidalTriple is three vertices witnessing non-interval structure.
type AsteroidalTriple struct {
	X, Y, Z int
}

// FindAsteroidalTriple returns an asteroidal triple of an undirected graph
// if one exists. It runs in O(n * (n + m)) preprocessing plus O(n^3)
// triple checking.
func FindAsteroidalTriple(g *graph.Graph) (AsteroidalTriple, bool) {
	n := g.N()
	// comp[v][u] = connected component id of u in G - N[v] (-1 for removed).
	comp := make([][]int, n)
	for v := 0; v < n; v++ {
		comp[v] = componentsAvoiding(g, v)
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if comp[x][y] == -1 || comp[y][x] == -1 {
				continue // adjacent (or in each other's closed hood)
			}
			for z := y + 1; z < n; z++ {
				if comp[x][z] == -1 || comp[y][z] == -1 ||
					comp[z][x] == -1 || comp[z][y] == -1 {
					continue
				}
				// Pairwise connected while avoiding the third's hood.
				if comp[z][x] == comp[z][y] && // x-y path avoiding N[z]
					comp[y][x] == comp[y][z] && // x-z path avoiding N[y]
					comp[x][y] == comp[x][z] { // y-z path avoiding N[x]
					return AsteroidalTriple{X: x, Y: y, Z: z}, true
				}
			}
		}
	}
	return AsteroidalTriple{}, false
}

// componentsAvoiding labels the connected components of G - N[v]; vertices
// inside N[v] get -1.
func componentsAvoiding(g *graph.Graph, v int) []int {
	n := g.N()
	out := make([]int, n)
	removed := make([]bool, n)
	removed[v] = true
	g.EachNeighbor(v, func(w int, _ float64) { removed[w] = true })
	for i := range out {
		out[i] = -2
	}
	id := 0
	for s := 0; s < n; s++ {
		if removed[s] || out[s] != -2 {
			continue
		}
		out[s] = id
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			g.EachNeighbor(u, func(w int, _ float64) {
				if !removed[w] && out[w] == -2 {
					out[w] = id
					queue = append(queue, w)
				}
			})
		}
		id++
	}
	for i := range out {
		if removed[i] {
			out[i] = -1
		}
	}
	return out
}

// IsIntervalGraph reports whether an undirected graph is an interval graph:
// chordal and asteroidal-triple-free (Lekkerkerker–Boland).
func IsIntervalGraph(g *graph.Graph) bool {
	if g.Directed() {
		return false
	}
	if !IsChordal(g) {
		return false
	}
	_, hasAT := FindAsteroidalTriple(g)
	return !hasAT
}
