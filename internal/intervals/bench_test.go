package intervals

import (
	"math/rand"
	"testing"
)

func benchFamily(n int) Family {
	r := rand.New(rand.NewSource(1))
	f := Family{NumVertices: n}
	for v := 0; v < n; v++ {
		s := r.Float64() * 1000
		f.Intervals = append(f.Intervals, Interval{Start: s, End: s + r.Float64()*30, Owner: v})
	}
	return f
}

func BenchmarkIntervalGraphBuild(b *testing.B) {
	f := benchFamily(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Graph(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypergraphSweep(b *testing.B) {
	f := benchFamily(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Hypergraph(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChordalityCheck(b *testing.B) {
	f := benchFamily(500)
	g, err := f.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsChordal(g) {
			b.Fatal("interval graph must be chordal")
		}
	}
}
