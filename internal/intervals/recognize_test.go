package intervals

import (
	"math/rand"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

// spider builds the subdivided claw S(2,2,2): center 0, three legs of two
// edges each — a tree (hence chordal) that is NOT an interval graph: its
// three leaf tips form an asteroidal triple.
func spider() *graph.Graph {
	g := graph.New(7)
	for leg := 0; leg < 3; leg++ {
		mid, tip := 1+2*leg, 2+2*leg
		_ = g.AddEdge(0, mid)
		_ = g.AddEdge(mid, tip)
	}
	return g
}

func TestSpiderIsChordalButNotInterval(t *testing.T) {
	g := spider()
	if !IsChordal(g) {
		t.Fatal("trees are chordal")
	}
	at, found := FindAsteroidalTriple(g)
	if !found {
		t.Fatal("the subdivided claw must contain an asteroidal triple")
	}
	tips := map[int]bool{2: true, 4: true, 6: true}
	if !tips[at.X] || !tips[at.Y] || !tips[at.Z] {
		t.Errorf("triple %v, want the three leg tips {2,4,6}", at)
	}
	if IsIntervalGraph(g) {
		t.Fatal("the subdivided claw is not an interval graph")
	}
}

func TestCaterpillarIsInterval(t *testing.T) {
	// A caterpillar (spine + legs) is an interval graph.
	g := graph.New(8)
	for i := 0; i+1 < 4; i++ { // spine 0-1-2-3
		_ = g.AddEdge(i, i+1)
	}
	for i := 0; i < 4; i++ { // one leg per spine node
		_ = g.AddEdge(i, 4+i)
	}
	if !IsIntervalGraph(g) {
		t.Fatal("caterpillars are interval graphs")
	}
}

func TestCyclesAreNotInterval(t *testing.T) {
	// C4 and larger fail at chordality (the paper's "time is linear, not
	// circular").
	for n := 4; n <= 7; n++ {
		if IsIntervalGraph(gen.Ring(n)) {
			t.Errorf("C%d must not be an interval graph", n)
		}
	}
	if !IsIntervalGraph(gen.Ring(3)) {
		t.Error("the triangle is an interval graph")
	}
}

func TestBasicsAreInterval(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":     gen.Path(9),
		"star":     gen.Star(7),
		"complete": gen.Complete(6),
		"empty":    graph.New(5),
		"single":   graph.New(1),
	} {
		if !IsIntervalGraph(g) {
			t.Errorf("%s must be an interval graph", name)
		}
	}
	if IsIntervalGraph(graph.NewDirected(3)) {
		t.Error("directed graphs are rejected")
	}
}

func TestRecognizerAcceptsBuiltIntervalGraphs(t *testing.T) {
	// Soundness: graphs built from actual interval families must pass.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(40)
		f := Family{NumVertices: n}
		for v := 0; v < n; v++ {
			s := r.Float64() * 60
			f.Intervals = append(f.Intervals, Interval{Start: s, End: s + r.Float64()*15, Owner: v})
		}
		g, err := f.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !IsIntervalGraph(g) {
			t.Fatalf("trial %d: graph of an interval family rejected", trial)
		}
	}
}

func TestRecognizerRejectsSpikedCycles(t *testing.T) {
	// Chordal-ized cycles with far-apart pendants: the classic AT families.
	// Take C6 fully chorded into a fan (chordal), then hang three pendant
	// vertices on alternating rim nodes: pendants form an asteroidal
	// triple (this is the "3-sun with rays" shape).
	g := graph.New(9)
	// Fan: 0 is the hub of a path 1-2-3-4-5.
	for i := 1; i < 5; i++ {
		_ = g.AddEdge(i, i+1)
	}
	for i := 1; i <= 5; i++ {
		_ = g.AddEdge(0, i)
	}
	// Pendants on 1, 3, 5.
	_ = g.AddEdge(1, 6)
	_ = g.AddEdge(3, 7)
	_ = g.AddEdge(5, 8)
	if !IsChordal(g) {
		t.Fatal("the fan with pendants is chordal")
	}
	if IsIntervalGraph(g) {
		t.Fatal("pendants around a fan hub form an asteroidal triple")
	}
}

func TestFindAsteroidalTripleNoneOnInterval(t *testing.T) {
	f := Fig1Family()
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, found := FindAsteroidalTriple(g); found {
		t.Error("Fig. 1's interval graph cannot contain an asteroidal triple")
	}
}
