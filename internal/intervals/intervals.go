// Package intervals implements the time-dimension intersection graphs of
// §II-A: interval graphs for online social networks, multiple-interval
// graphs (a user online several times), and interval hypergraphs whose
// hyperedges are the maximal sets of simultaneously-online users (Fig. 1).
//
// It also provides the chordality machinery the paper invokes: every
// interval graph is chordal ("time is linear, not circular"), checked via
// Lex-BFS and perfect-elimination-ordering verification.
package intervals

import (
	"errors"
	"fmt"
	"sort"

	"structura/internal/graph"
)

// Interval is a closed interval [Start, End] on the real line, owned by a
// vertex (e.g. one online session of a user).
type Interval struct {
	Start, End float64
	Owner      int
}

// Overlaps reports whether two closed intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Family is a set of intervals grouped by owner vertex; owner IDs must be
// dense in [0, NumVertices).
type Family struct {
	NumVertices int
	Intervals   []Interval
}

// Validate checks owner ranges and interval sanity.
func (f Family) Validate() error {
	for _, iv := range f.Intervals {
		if iv.Owner < 0 || iv.Owner >= f.NumVertices {
			return fmt.Errorf("intervals: owner %d out of range [0,%d)", iv.Owner, f.NumVertices)
		}
		if iv.End < iv.Start {
			return fmt.Errorf("intervals: inverted interval [%g,%g]", iv.Start, iv.End)
		}
	}
	return nil
}

// Graph builds the (multiple-)interval graph: vertices are owners, with an
// edge whenever any interval of one owner intersects any interval of the
// other. With one interval per owner this is the classic interval graph.
func (f Family) Graph() (*graph.Graph, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(f.NumVertices)
	// Sweep: sort by start; for each interval, scan forward while starts
	// are <= this end.
	ivs := append([]Interval(nil), f.Intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for i, a := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			b := ivs[j]
			if b.Start > a.End {
				break
			}
			if a.Owner != b.Owner && !g.HasEdge(a.Owner, b.Owner) {
				_ = g.AddEdge(a.Owner, b.Owner)
			}
		}
	}
	return g, nil
}

// Hyperedge is a maximal set of owners whose intervals share a common time
// point (one hyperedge of the interval hypergraph of Fig. 1).
type Hyperedge []int

// Hypergraph returns the maximal hyperedges of the interval hypergraph: the
// maximal cliques of the interval graph, which by Helly's property for
// intervals are exactly the maximal sets of pairwise- (hence commonly-)
// intersecting intervals. Owners appearing through several intervals are
// deduplicated per hyperedge.
func (f Family) Hypergraph() ([]Hyperedge, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(f.Intervals) == 0 {
		return nil, nil
	}
	type event struct {
		t     float64
		kind  int // 0 = start (processed first at equal t), 1 = end
		owner int
	}
	events := make([]event, 0, 2*len(f.Intervals))
	for _, iv := range f.Intervals {
		events = append(events, event{iv.Start, 0, iv.Owner}, event{iv.End, 1, iv.Owner})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].kind < events[j].kind // closed intervals: starts before ends
	})
	active := make(map[int]int) // owner -> open interval count
	var out []Hyperedge
	grown := false
	emit := func() {
		if !grown || len(active) == 0 {
			return
		}
		he := make(Hyperedge, 0, len(active))
		for o := range active {
			he = append(he, o)
		}
		sort.Ints(he)
		out = append(out, he)
		grown = false
	}
	for _, ev := range events {
		if ev.kind == 0 {
			if active[ev.owner] == 0 {
				grown = true // the active *set* gained an owner
			}
			active[ev.owner]++
			continue
		}
		if active[ev.owner] == 1 {
			// The set is about to lose this owner: if it grew since the
			// last emission it is a maximal-clique candidate.
			emit()
			delete(active, ev.owner)
		} else {
			active[ev.owner]--
		}
	}
	emit()
	return pruneHyperedges(out), nil
}

// pruneHyperedges deduplicates and removes strict subsets, keeping only
// inclusion-maximal hyperedges (the maximal cliques).
func pruneHyperedges(hes []Hyperedge) []Hyperedge {
	seen := make(map[string]bool, len(hes))
	uniq := hes[:0]
	for _, he := range hes {
		key := fmt.Sprint([]int(he))
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, he)
		}
	}
	var out []Hyperedge
	for i, a := range uniq {
		subset := false
		for j, b := range uniq {
			if i != j && len(a) <= len(b) && (len(a) < len(b) || i > j) && isSubset(a, b) {
				subset = true
				break
			}
		}
		if !subset {
			out = append(out, a)
		}
	}
	return out
}

func isSubset(a, b Hyperedge) bool {
	// Both sorted ascending.
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// CardinalityDistribution returns a histogram of hyperedge sizes:
// dist[k] = number of hyperedges with exactly k owners (index 0 unused).
// This is the "edge density distribution" question the paper raises for
// online social networks.
func CardinalityDistribution(hes []Hyperedge) []int {
	maxK := 0
	for _, he := range hes {
		if len(he) > maxK {
			maxK = len(he)
		}
	}
	dist := make([]int, maxK+1)
	for _, he := range hes {
		dist[len(he)]++
	}
	return dist
}

// ErrNotChordal is returned by PerfectEliminationOrdering on a non-chordal
// graph.
var ErrNotChordal = errors.New("intervals: graph is not chordal")

// LexBFS returns a lexicographic breadth-first-search ordering of an
// undirected graph (ties broken by smallest ID). The reverse of this order
// is a perfect elimination ordering iff the graph is chordal.
func LexBFS(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, 0, n)
	visited := make([]bool, n)
	labels := make([][]int, n) // descending sequence of visit positions
	for len(order) < n {
		// Pick unvisited vertex with lexicographically largest label.
		best := -1
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			if best == -1 || lexGreater(labels[v], labels[best]) {
				best = v
			}
		}
		visited[best] = true
		pos := n - len(order) // descending positions keep labels sorted
		order = append(order, best)
		g.EachNeighbor(best, func(w int, _ float64) {
			if !visited[w] {
				labels[w] = append(labels[w], pos)
			}
		})
	}
	return order
}

func lexGreater(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return len(a) > len(b)
}

// IsChordal reports whether an undirected graph is chordal (every cycle of
// length >= 4 has a chord), via Lex-BFS + PEO verification.
func IsChordal(g *graph.Graph) bool {
	_, err := PerfectEliminationOrdering(g)
	return err == nil
}

// PerfectEliminationOrdering returns a PEO of g (vertices ordered so each
// vertex plus its later neighbors form a clique), or ErrNotChordal.
func PerfectEliminationOrdering(g *graph.Graph) ([]int, error) {
	if g.Directed() {
		return nil, errors.New("intervals: chordality is defined on undirected graphs")
	}
	n := g.N()
	lex := LexBFS(g)
	// PEO candidate = reverse Lex-BFS order.
	peo := make([]int, n)
	pos := make([]int, n)
	for i, v := range lex {
		peo[n-1-i] = v
	}
	for i, v := range peo {
		pos[v] = i
	}
	// Verify: for each v, let RN(v) = later neighbors; the earliest w in
	// RN(v) must be adjacent to all of RN(v) \ {w}.
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool, g.Degree(v))
		g.EachNeighbor(v, func(w int, _ float64) { adj[v][w] = true })
	}
	for _, v := range peo {
		var rn []int
		for w := range adj[v] {
			if pos[w] > pos[v] {
				rn = append(rn, w)
			}
		}
		if len(rn) < 2 {
			continue
		}
		w := rn[0]
		for _, u := range rn[1:] {
			if pos[u] < pos[w] {
				w = u
			}
		}
		for _, u := range rn {
			if u != w && !adj[w][u] {
				return nil, fmt.Errorf("%w: vertex %d's later neighbors %d,%d not adjacent", ErrNotChordal, v, w, u)
			}
		}
	}
	return peo, nil
}

// Fig1Family returns the canonical 4-user online-social-network example of
// the paper's Fig. 1: users A(0), B(1), C(2), D(3), with A, C, and D all
// online at a common moment (the hyperedge the paper adds) and B online only
// early. Exact coordinates are not given in the paper; these preserve its
// stated intersection pattern.
func Fig1Family() Family {
	return Family{
		NumVertices: 4,
		Intervals: []Interval{
			{Start: 0, End: 4, Owner: 0},     // A
			{Start: 0.5, End: 1.5, Owner: 1}, // B
			{Start: 1, End: 5, Owner: 2},     // C
			{Start: 3, End: 6, Owner: 3},     // D
		},
	}
}
