package intervals

import (
	"errors"
	"math/rand"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
)

func TestOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"disjoint", Interval{0, 1, 0}, Interval{2, 3, 1}, false},
		{"touching", Interval{0, 1, 0}, Interval{1, 2, 1}, true}, // closed intervals
		{"nested", Interval{0, 10, 0}, Interval{2, 3, 1}, true},
		{"partial", Interval{0, 5, 0}, Interval{3, 8, 1}, true},
		{"reversed-args", Interval{3, 8, 0}, Interval{0, 5, 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("Overlaps not symmetric")
			}
		})
	}
}

func TestValidate(t *testing.T) {
	bad := Family{NumVertices: 2, Intervals: []Interval{{0, 1, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("owner out of range should error")
	}
	inv := Family{NumVertices: 1, Intervals: []Interval{{3, 1, 0}}}
	if err := inv.Validate(); err == nil {
		t.Error("inverted interval should error")
	}
	if err := Fig1Family().Validate(); err != nil {
		t.Errorf("Fig1Family invalid: %v", err)
	}
}

func TestFig1Graph(t *testing.T) {
	g, err := Fig1Family().Graph()
	if err != nil {
		t.Fatal(err)
	}
	// A=0 B=1 C=2 D=3. Expected edges: A-B, A-C, A-D, B-C, C-D; not B-D.
	wantEdges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.HasEdge(1, 3) {
		t.Error("B-D should not be an edge (B offline before D online)")
	}
	if g.M() != 5 {
		t.Errorf("M = %d, want 5", g.M())
	}
}

func TestFig1Hypergraph(t *testing.T) {
	hes, err := Fig1Family().Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	// The paper: A, C, D intersect at one moment -> hyperedge {A,C,D};
	// also A, B, C are simultaneously online early.
	var gotACD, gotABC bool
	for _, he := range hes {
		if len(he) == 3 && he[0] == 0 && he[1] == 2 && he[2] == 3 {
			gotACD = true
		}
		if len(he) == 3 && he[0] == 0 && he[1] == 1 && he[2] == 2 {
			gotABC = true
		}
	}
	if !gotACD {
		t.Errorf("missing hyperedge {A,C,D}; got %v", hes)
	}
	if !gotABC {
		t.Errorf("missing hyperedge {A,B,C}; got %v", hes)
	}
	dist := CardinalityDistribution(hes)
	if len(dist) < 4 || dist[3] != 2 {
		t.Errorf("cardinality distribution = %v, want two 3-hyperedges", dist)
	}
}

func TestMultipleIntervalOwner(t *testing.T) {
	// Owner 0 online twice; second session overlaps owner 1.
	f := Family{
		NumVertices: 2,
		Intervals: []Interval{
			{0, 1, 0}, {5, 7, 0}, {6, 8, 1},
		},
	}
	g, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("multi-interval overlap should create an edge")
	}
	hes, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	// Maximal hyperedges: {0,1}; the lone early {0} session is a subset.
	if len(hes) != 1 || len(hes[0]) != 2 {
		t.Errorf("hyperedges = %v, want just {0,1}", hes)
	}
}

func TestHypergraphDisjointOwners(t *testing.T) {
	f := Family{
		NumVertices: 2,
		Intervals:   []Interval{{0, 1, 0}, {2, 3, 1}},
	}
	hes, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(hes) != 2 {
		t.Errorf("hyperedges = %v, want two singletons", hes)
	}
	f2 := Family{NumVertices: 0}
	if hes, err := f2.Hypergraph(); err != nil || hes != nil {
		t.Error("empty family should produce nil, nil")
	}
}

func TestHypergraphNestedSameOwner(t *testing.T) {
	// Regression: an inner interval of the same owner ending must not emit
	// a spurious subset hyperedge.
	f := Family{
		NumVertices: 2,
		Intervals:   []Interval{{0, 10, 0}, {1, 2, 0}, {3, 4, 1}},
	}
	hes, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(hes) != 1 || len(hes[0]) != 2 {
		t.Errorf("hyperedges = %v, want just {0,1}", hes)
	}
}

func TestIntervalGraphsAreChordal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(60)
		f := Family{NumVertices: n}
		for v := 0; v < n; v++ {
			s := r.Float64() * 100
			f.Intervals = append(f.Intervals, Interval{s, s + r.Float64()*20, v})
		}
		g, err := f.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !IsChordal(g) {
			t.Fatalf("interval graph (trial %d) must be chordal", trial)
		}
	}
}

func TestC4NotChordal(t *testing.T) {
	// The paper: a chordless 4-cycle cannot be an interval graph because
	// time is linear, not circular.
	c4 := gen.Ring(4)
	if IsChordal(c4) {
		t.Fatal("C4 must not be chordal")
	}
	if _, err := PerfectEliminationOrdering(c4); !errors.Is(err, ErrNotChordal) {
		t.Errorf("want ErrNotChordal, got %v", err)
	}
	c5 := gen.Ring(5)
	if IsChordal(c5) {
		t.Fatal("C5 must not be chordal")
	}
}

func TestChordalPositives(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", gen.Complete(6)},
		{"tree/path", gen.Path(7)},
		{"star", gen.Star(6)},
		{"triangle", gen.Ring(3)},
		{"empty", graph.New(4)},
		{"single", graph.New(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if !IsChordal(tc.g) {
				t.Errorf("%s must be chordal", tc.name)
			}
		})
	}
}

func TestChordalC4PlusChord(t *testing.T) {
	g := gen.Ring(4)
	_ = g.AddEdge(0, 2)
	if !IsChordal(g) {
		t.Error("C4 + chord must be chordal")
	}
}

func TestPEOOnDirected(t *testing.T) {
	if _, err := PerfectEliminationOrdering(graph.NewDirected(3)); err == nil {
		t.Error("directed graph should be rejected")
	}
}

func TestPEOProperty(t *testing.T) {
	// For any returned PEO, each vertex's later neighborhood must be a
	// clique — check directly on random interval graphs.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(30)
		f := Family{NumVertices: n}
		for v := 0; v < n; v++ {
			s := r.Float64() * 50
			f.Intervals = append(f.Intervals, Interval{s, s + r.Float64()*15, v})
		}
		g, _ := f.Graph()
		peo, err := PerfectEliminationOrdering(g)
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, n)
		for i, v := range peo {
			pos[v] = i
		}
		for _, v := range peo {
			var later []int
			for _, w := range g.Neighbors(v) {
				if pos[w] > pos[v] {
					later = append(later, w)
				}
			}
			for i := 0; i < len(later); i++ {
				for j := i + 1; j < len(later); j++ {
					if !g.HasEdge(later[i], later[j]) {
						t.Fatalf("PEO violated at %d: %d,%d not adjacent", v, later[i], later[j])
					}
				}
			}
		}
	}
}

func TestLexBFSCoversAll(t *testing.T) {
	g := gen.Grid(3, 3)
	order := LexBFS(g)
	if len(order) != 9 {
		t.Fatalf("LexBFS length = %d", len(order))
	}
	seen := make(map[int]bool)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate %d in LexBFS order", v)
		}
		seen[v] = true
	}
}

func TestCardinalityDistributionEmpty(t *testing.T) {
	if d := CardinalityDistribution(nil); len(d) != 1 {
		t.Errorf("empty distribution = %v", d)
	}
}

func TestGraphRejectsInvalidFamily(t *testing.T) {
	bad := Family{NumVertices: 1, Intervals: []Interval{{0, 1, 9}}}
	if _, err := bad.Graph(); err == nil {
		t.Error("Graph should reject invalid family")
	}
	if _, err := bad.Hypergraph(); err == nil {
		t.Error("Hypergraph should reject invalid family")
	}
}

// Property: hyperedges of a single-interval family are exactly the maximal
// cliques — every hyperedge is a clique in the interval graph, and every
// edge is inside some hyperedge.
func TestHyperedgesAreCliquesCoveringEdges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		f := Family{NumVertices: n}
		for v := 0; v < n; v++ {
			s := r.Float64() * 30
			f.Intervals = append(f.Intervals, Interval{s, s + r.Float64()*10, v})
		}
		g, _ := f.Graph()
		hes, err := f.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		for _, he := range hes {
			for i := 0; i < len(he); i++ {
				for j := i + 1; j < len(he); j++ {
					if !g.HasEdge(he[i], he[j]) {
						t.Fatalf("hyperedge %v is not a clique (%d-%d missing)", he, he[i], he[j])
					}
				}
			}
		}
		for _, e := range g.Edges() {
			covered := false
			for _, he := range hes {
				if contains(he, e.From) && contains(he, e.To) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("edge %v not covered by any hyperedge", e)
			}
		}
	}
}

func contains(he Hyperedge, v int) bool {
	for _, x := range he {
		if x == v {
			return true
		}
	}
	return false
}
