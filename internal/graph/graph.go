// Package graph provides the static-graph substrate used throughout
// structura: an adjacency-list graph with the classic algorithms the paper
// builds on (traversals, shortest paths, components, spanning trees).
//
// Nodes are dense integer IDs in [0, N). This matches the paper's setting
// where "each node has a distinct ID" used for symmetry breaking, and keeps
// every algorithm allocation-friendly.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNodeRange is returned when an operation names a node outside [0, N).
var ErrNodeRange = errors.New("graph: node out of range")

// Edge is a (possibly weighted) edge between two nodes.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is an adjacency-list graph over nodes 0..N-1. The zero value is an
// empty undirected graph; use New / NewDirected for sized construction.
type Graph struct {
	directed bool
	adj      [][]halfEdge
	edges    int
	// indeg caches per-node in-degrees for directed graphs (nil for
	// undirected, where in-degree == degree). It is maintained
	// incrementally by every mutation, so InDegree stays O(1) and
	// read-only methods never write to the graph (concurrent readers
	// stay safe).
	indeg []int
}

type halfEdge struct {
	to int
	w  float64
}

// New returns an undirected graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// NewDirected returns a directed graph with n nodes and no edges.
func NewDirected(n int) *Graph {
	return &Graph{directed: true, adj: make([][]halfEdge, n), indeg: make([]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges (each undirected edge counted once).
func (g *Graph) M() int { return g.edges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	if g.directed {
		g.indeg = append(g.indeg, 0)
	}
	return len(g.adj) - 1
}

func (g *Graph) check(v int) error {
	if v < 0 || v >= len(g.adj) {
		return fmt.Errorf("%w: %d (n=%d)", ErrNodeRange, v, len(g.adj))
	}
	return nil
}

// AddEdge adds an unweighted (weight-1) edge between u and v.
func (g *Graph) AddEdge(u, v int) error {
	return g.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge adds an edge with the given weight. Parallel edges are
// allowed (callers that need simple graphs use HasEdge first); self-loops are
// rejected because no algorithm in the paper uses them.
func (g *Graph) AddWeightedEdge(u, v int, w float64) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	if g.directed {
		g.indeg[v]++
	} else {
		g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	}
	g.edges++
	return nil
}

// RemoveEdge deletes one edge between u and v (all parallel copies in the
// matching direction). It reports whether any edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	removed := g.removeHalf(u, v)
	if removed > 0 {
		if g.directed {
			g.indeg[v] -= removed
		} else {
			g.removeHalf(v, u)
		}
	}
	g.edges -= removed
	return removed > 0
}

func (g *Graph) removeHalf(u, v int) int {
	if u < 0 || u >= len(g.adj) {
		return 0
	}
	kept := g.adj[u][:0]
	removed := 0
	for _, e := range g.adj[u] {
		if e.to == v {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	g.adj[u] = kept
	return removed
}

// HasEdge reports whether an edge u->v exists (in either direction for
// undirected graphs).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of the first edge u->v, or an error if absent.
func (g *Graph) Weight(u, v int) (float64, error) {
	if err := g.check(u); err != nil {
		return 0, err
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w, nil
		}
	}
	return 0, fmt.Errorf("graph: no edge %d->%d", u, v)
}

// Neighbors returns the out-neighbors of v in insertion order. The returned
// slice is a copy and safe to retain. Hot paths that only iterate should
// prefer EachNeighbor, or freeze the graph and use CSR.Neighbors for a
// zero-copy view; Neighbors keeps its copying semantics for API
// compatibility.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	out := make([]int, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// EachNeighbor calls fn for every out-neighbor (with edge weight) of v,
// without allocating.
func (g *Graph) EachNeighbor(v int, fn func(to int, w float64)) {
	if v < 0 || v >= len(g.adj) {
		return
	}
	for _, e := range g.adj[v] {
		fn(e.to, e.w)
	}
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= len(g.adj) {
		return 0
	}
	return len(g.adj[v])
}

// InDegree returns the in-degree of v. For undirected graphs it equals
// Degree. For directed graphs it is an O(1) read of the incrementally
// maintained in-degree cache.
func (g *Graph) InDegree(v int) int {
	if !g.directed {
		return g.Degree(v)
	}
	if v < 0 || v >= len(g.indeg) {
		return 0
	}
	return g.indeg[v]
}

// InDegrees returns the in-degree of every node in one O(n) pass (equal to
// Degrees for undirected graphs).
func (g *Graph) InDegrees() []int {
	if !g.directed {
		return g.Degrees()
	}
	return append([]int(nil), g.indeg...)
}

// Degrees returns the out-degree of every node.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for v := range g.adj {
		out[v] = len(g.adj[v])
	}
	return out
}

// Edges returns all edges. For undirected graphs, each edge appears once
// with From < To.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, lst := range g.adj {
		for _, e := range lst {
			if g.directed || u < e.to {
				out = append(out, Edge{From: u, To: e.to, Weight: e.w})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{directed: g.directed, adj: make([][]halfEdge, len(g.adj)), edges: g.edges}
	// One backing slab for every adjacency row: cloning costs two
	// allocations instead of one per node. Each row is capacity-capped, so
	// a later AddEdge on the clone reallocates that row alone and the
	// in-place compaction RemoveEdge performs stays inside the row.
	total := 0
	for _, lst := range g.adj {
		total += len(lst)
	}
	buf := make([]halfEdge, 0, total)
	for v, lst := range g.adj {
		off := len(buf)
		buf = append(buf, lst...)
		c.adj[v] = buf[off:len(buf):len(buf)]
	}
	if g.directed {
		c.indeg = append([]int(nil), g.indeg...)
	}
	return c
}

// Subgraph returns the induced subgraph on keep (a set of node IDs), along
// with the mapping newID -> oldID. Nodes are renumbered densely in ascending
// old-ID order.
func (g *Graph) Subgraph(keep map[int]bool) (*Graph, []int) {
	olds := make([]int, 0, len(keep))
	for v := range keep {
		if v >= 0 && v < len(g.adj) {
			olds = append(olds, v)
		}
	}
	sort.Ints(olds)
	newID := make(map[int]int, len(olds))
	for i, v := range olds {
		newID[v] = i
	}
	sub := &Graph{directed: g.directed, adj: make([][]halfEdge, len(olds))}
	if g.directed {
		sub.indeg = make([]int, len(olds))
	}
	for _, u := range olds {
		for _, e := range g.adj[u] {
			if !keep[e.to] {
				continue
			}
			if !g.directed && u > e.to {
				continue // count undirected edges once
			}
			nu, nv := newID[u], newID[e.to]
			sub.adj[nu] = append(sub.adj[nu], halfEdge{to: nv, w: e.w})
			if g.directed {
				sub.indeg[nv]++
			} else {
				sub.adj[nv] = append(sub.adj[nv], halfEdge{to: nu, w: e.w})
			}
			sub.edges++
		}
	}
	return sub, olds
}

// Undirected returns an undirected copy of g, collapsing edge directions.
// When both directions of a link existed they are deduplicated (via
// HasEdge) into a single undirected edge carrying the first direction's
// weight, so the result never contains parallel edges the directed graph
// did not already have.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g.Clone()
	}
	u := New(len(g.adj))
	for v, lst := range g.adj {
		for _, e := range lst {
			if !u.HasEdge(v, e.to) {
				_ = u.AddWeightedEdge(v, e.to, e.w)
			}
		}
	}
	return u
}
