package graph

import (
	"sort"
	"testing"
)

// FuzzFreezeRoundTrip interprets the fuzz input as a program of edge
// mutations on a small graph and checks that the frozen CSR snapshot agrees
// with the mutable adjacency-list graph on every read-side query. Byte
// layout: [0] node count (mod 17), [1] directedness, then op triples
// (op, u, v) where op selects add / weighted-add / remove.
func FuzzFreezeRoundTrip(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 1, 0, 1, 2, 2, 0, 1})
	f.Add([]byte{8, 1, 0, 0, 7, 1, 7, 0, 0, 3, 4})
	f.Add([]byte{1, 0})
	f.Add([]byte{16, 0, 0, 0, 1, 0, 0, 1, 0, 1, 0, 2, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]) % 17
		var g *Graph
		if data[1]&1 == 1 {
			g = NewDirected(n)
		} else {
			g = New(n)
		}
		for i := 2; i+2 < len(data); i += 3 {
			op, u, v := data[i]%3, int(data[i+1]), int(data[i+2])
			if n > 0 {
				u, v = u%n, v%n
			}
			switch op {
			case 0:
				g.AddEdge(u, v) // errors (self-loop, out of range) are part of the contract
			case 1:
				g.AddWeightedEdge(u, v, float64(data[i+2])+0.5)
			case 2:
				g.RemoveEdge(u, v)
			}
		}
		c := g.Freeze()
		if c.N() != g.N() {
			t.Fatalf("CSR N=%d, Graph N=%d", c.N(), g.N())
		}
		if c.M() != g.M() {
			t.Fatalf("CSR M=%d, Graph M=%d", c.M(), g.M())
		}
		if c.Directed() != g.Directed() {
			t.Fatalf("CSR directed=%v, Graph directed=%v", c.Directed(), g.Directed())
		}
		for v := 0; v < n; v++ {
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("node %d: CSR degree %d, Graph degree %d", v, c.Degree(v), g.Degree(v))
			}
			if g.Directed() && c.InDegree(v) != g.InDegree(v) {
				t.Fatalf("node %d: CSR in-degree %d, Graph in-degree %d", v, c.InDegree(v), g.InDegree(v))
			}
			want := append([]int(nil), g.Neighbors(v)...)
			var got []int
			c.EachNeighbor(v, func(to int, _ float64) { got = append(got, to) })
			sort.Ints(want)
			sort.Ints(got)
			if len(want) != len(got) {
				t.Fatalf("node %d: CSR has %d neighbors, Graph %d", v, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("node %d: neighbor multisets differ: CSR %v, Graph %v", v, got, want)
				}
			}
		}
		// Edge-membership agreement both for present edges and a sweep of
		// absent pairs (bounded so the fuzz iteration stays fast).
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("HasEdge(%d,%d): CSR %v, Graph %v", u, v, c.HasEdge(u, v), g.HasEdge(u, v))
				}
			}
		}
	})
}
