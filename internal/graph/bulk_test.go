package graph

import (
	"testing"
)

func TestFromEdgesMatchesIncremental(t *testing.T) {
	edges := [][3]int{{0, 1, 1}, {1, 2, 5}, {2, 3, 1}, {0, 3, 2}, {1, 3, 1}, {4, 0, 7}}
	for _, directed := range []bool{false, true} {
		var inc *Graph
		if directed {
			inc = NewDirected(5)
		} else {
			inc = New(5)
		}
		for _, e := range edges {
			if err := inc.AddWeightedEdge(e[0], e[1], float64(e[2])); err != nil {
				t.Fatal(err)
			}
		}
		bulk, err := FromEdges(5, directed, len(edges), func(i int) (int, int, float64) {
			return edges[i][0], edges[i][1], float64(edges[i][2])
		})
		if err != nil {
			t.Fatal(err)
		}
		if bulk.N() != inc.N() || bulk.M() != inc.M() || bulk.Directed() != inc.Directed() {
			t.Fatalf("directed=%v: shape (%d,%d) vs (%d,%d)", directed, bulk.N(), bulk.M(), inc.N(), inc.M())
		}
		for v := 0; v < 5; v++ {
			bn, in := bulk.Neighbors(v), inc.Neighbors(v)
			if len(bn) != len(in) {
				t.Fatalf("directed=%v node %d: %v vs %v", directed, v, bn, in)
			}
			for i := range bn {
				if bn[i] != in[i] {
					t.Fatalf("directed=%v node %d: %v vs %v", directed, v, bn, in)
				}
			}
			var bw, iw []float64
			bulk.EachNeighbor(v, func(_ int, w float64) { bw = append(bw, w) })
			inc.EachNeighbor(v, func(_ int, w float64) { iw = append(iw, w) })
			for i := range bw {
				if bw[i] != iw[i] {
					t.Fatalf("directed=%v node %d weights: %v vs %v", directed, v, bw, iw)
				}
			}
			if directed && bulk.InDegree(v) != inc.InDegree(v) {
				t.Fatalf("node %d indegree %d vs %d", v, bulk.InDegree(v), inc.InDegree(v))
			}
		}
	}
}

func TestFromEdgesRejectsBadEdges(t *testing.T) {
	if _, err := FromEdges(3, false, 1, func(int) (int, int, float64) { return 0, 3, 1 }); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := FromEdges(3, false, 1, func(int) (int, int, float64) { return 1, 1, 1 }); err == nil {
		t.Fatal("self-loop accepted")
	}
}

// TestFromEdgesMutableAfterBulk guards the arena capacity clipping: an
// append to one node's adjacency must not clobber a neighbor's slice.
func TestFromEdgesMutableAfterBulk(t *testing.T) {
	g, err := FromEdges(4, false, 2, func(i int) (int, int, float64) {
		return [2][2]int{{0, 1}, {2, 3}}[i][0], [2][2]int{{0, 1}, {2, 3}}[i][1], 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(2); len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("node 2 neighbors after append: %v", got)
	}
	if got := g.Neighbors(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("node 1 neighbors clobbered: %v", got)
	}
	if got := g.Neighbors(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("node 3 neighbors clobbered: %v", got)
	}
}
