package graph

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestCheckCSRBounds pins the int32 size gate shared by Freeze, FreezeChecked,
// and NewCSR: oversized node or half-edge counts yield the typed ErrTooLarge
// (never a silent truncation), and in-range counts pass.
func TestCheckCSRBounds(t *testing.T) {
	for _, tc := range []struct {
		n, half int
		ok      bool
	}{
		{0, 0, true},
		{10, 40, true},
		{math.MaxInt32 - 1, math.MaxInt32, true},
		{math.MaxInt32, 0, false},
		{math.MaxInt32 + 1, 0, false},
		{10, math.MaxInt32 + 1, false},
	} {
		err := CheckCSRBounds(tc.n, tc.half)
		if tc.ok && err != nil {
			t.Errorf("CheckCSRBounds(%d, %d) = %v, want nil", tc.n, tc.half, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("CheckCSRBounds(%d, %d) = nil, want ErrTooLarge", tc.n, tc.half)
			} else if !errors.Is(err, ErrTooLarge) {
				t.Errorf("CheckCSRBounds(%d, %d) = %v, not wrapping ErrTooLarge", tc.n, tc.half, err)
			}
		}
	}
}

// TestFreezeChecked: the checked entry point produces the same snapshot as
// Freeze on graphs that fit.
func TestFreezeChecked(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	c, err := g.FreezeChecked()
	if err != nil {
		t.Fatalf("FreezeChecked: %v", err)
	}
	want := g.Freeze()
	if c.N() != want.N() || c.M() != want.M() {
		t.Fatalf("FreezeChecked snapshot differs: n=%d m=%d, want n=%d m=%d",
			c.N(), c.M(), want.N(), want.M())
	}
	for v := 0; v < c.N(); v++ {
		if !reflect.DeepEqual(c.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("node %d rows differ: %v vs %v", v, c.Neighbors(v), want.Neighbors(v))
		}
	}
}

// TestNewCSRValidation exercises every rejection branch of the direct
// assembler, then the happy paths (nil weights backing, reverse adjacency on
// directed input, array retention).
func TestNewCSRValidation(t *testing.T) {
	valid := func() ([]int32, []int32, []float64) {
		return []int32{0, 2, 3, 4}, []int32{1, 2, 0, 0}, []float64{1, 2, 3, 4}
	}
	if _, err := NewCSR(false, 2, nil, nil, nil); err == nil {
		t.Error("empty offsets must fail")
	}
	if _, err := NewCSR(false, 2, []int32{1, 4}, make([]int32, 4), nil); err == nil {
		t.Error("offsets not starting at 0 must fail")
	}
	if _, err := NewCSR(false, 2, []int32{0, 3, 2, 4}, make([]int32, 4), nil); err == nil {
		t.Error("decreasing offsets must fail")
	}
	if _, err := NewCSR(false, 2, []int32{0, 2, 3, 3}, make([]int32, 4), nil); err == nil {
		t.Error("offsets not ending at len(targets) must fail")
	}
	{
		off, tgt, _ := valid()
		tgt[1] = 3 // out of range for n=3
		if _, err := NewCSR(false, 2, off, tgt, nil); err == nil {
			t.Error("out-of-range target must fail")
		}
	}
	{
		off, tgt, _ := valid()
		if _, err := NewCSR(false, 2, off, tgt, []float64{1}); err == nil {
			t.Error("weights/targets length mismatch must fail")
		}
		if _, err := NewCSR(false, -1, off, tgt, nil); err == nil {
			t.Error("negative m must fail")
		}
	}

	off, tgt, w := valid()
	c, err := NewCSR(true, 4, off, tgt, w)
	if err != nil {
		t.Fatalf("valid directed NewCSR: %v", err)
	}
	if c.N() != 3 || c.M() != 4 || !c.Directed() {
		t.Fatalf("header wrong: n=%d m=%d directed=%v", c.N(), c.M(), c.Directed())
	}
	if got := c.Neighbors(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("row 0 = %v", got)
	}
	// Reverse adjacency is materialized: node 0 is entered from 1 and 2.
	if got := c.InNeighbors(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("in-neighbors of 0 = %v", got)
	}
	if c.InDegree(1) != 1 || c.InDegree(2) != 1 {
		t.Fatalf("in-degrees wrong: %d %d", c.InDegree(1), c.InDegree(2))
	}
	if got := c.InNeighborWeights(0); !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Fatalf("in-weights of 0 = %v", got)
	}

	// nil weights are backed by zeros.
	off2, tgt2, _ := valid()
	c2, err := NewCSR(false, 2, off2, tgt2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.NeighborWeights(0); got[0] != 0 || got[1] != 0 {
		t.Fatalf("nil weights not zero-backed: %v", got)
	}

	// Oversized inputs hit the shared bounds gate.
	if _, err := NewCSR(false, 0, make([]int32, math.MaxInt32+1), nil, nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized n: err=%v, want ErrTooLarge", err)
	}
}
