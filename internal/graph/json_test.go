package graph

import (
	"encoding/json"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddWeightedEdge(1, 2, 2.5)
	_ = g.AddEdge(2, 3)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 3 || back.Directed() {
		t.Fatalf("round trip: %v", &back)
	}
	if w, err := back.Weight(1, 2); err != nil || w != 2.5 {
		t.Errorf("weight lost: %v, %v", w, err)
	}
	if !back.HasEdge(0, 1) || !back.HasEdge(3, 2) {
		t.Error("edges lost")
	}
}

func TestGraphJSONDirected(t *testing.T) {
	g := NewDirected(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 0)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Directed() || back.M() != 2 {
		t.Fatalf("directed round trip failed: %v", &back)
	}
	if !back.HasEdge(0, 1) || !back.HasEdge(1, 0) {
		t.Error("directed edges lost")
	}
}

func TestGraphJSONRejectsGarbage(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"n": -1}`), &g); err == nil {
		t.Error("negative n should error")
	}
	if err := json.Unmarshal([]byte(`{"n": 2, "edges": [{"from": 0, "to": 9}]}`), &g); err == nil {
		t.Error("out-of-range edge should error")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestGraphJSONEmpty(t *testing.T) {
	data, err := json.Marshal(New(0))
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 || back.M() != 0 {
		t.Error("empty graph round trip failed")
	}
}
