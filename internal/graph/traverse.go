package graph

import (
	"container/heap"
	"math"
	"sort"
)

// BFS runs a breadth-first search from src and returns the hop distance to
// every node (-1 if unreachable) and the BFS parent of every node (-1 for
// src and unreachable nodes). An out-of-range src is an error (ErrNodeRange)
// rather than an all-unreachable result, which would be indistinguishable
// from a disconnected graph.
func (g *Graph) BFS(src int) (dist, parent []int, err error) {
	if err := g.check(src); err != nil {
		return nil, nil, err
	}
	n := len(g.adj)
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	// Head-index walk: advancing a slice with queue[1:] would retain the
	// whole backing array for the run and regrow it on every append.
	queue := make([]int, 1, n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, e := range g.adj[u] {
			if dist[e.to] == -1 {
				dist[e.to] = dist[u] + 1
				parent[e.to] = u
				queue = append(queue, e.to)
			}
		}
	}
	return dist, parent, nil
}

// DFS returns the nodes reachable from src in depth-first preorder.
func (g *Graph) DFS(src int) []int {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil
	}
	visited := make([]bool, n)
	var order []int
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[u] {
			continue
		}
		visited[u] = true
		order = append(order, u)
		// Push in reverse so neighbors are visited in adjacency order.
		for i := len(g.adj[u]) - 1; i >= 0; i-- {
			if !visited[g.adj[u][i].to] {
				stack = append(stack, g.adj[u][i].to)
			}
		}
	}
	return order
}

// Connected reports whether an undirected graph is connected (vacuously true
// for n <= 1). For directed graphs it tests weak connectivity.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	u := g
	if g.directed {
		u = g.Undirected()
	}
	dist, _, _ := u.BFS(0) // n > 1 here, so src 0 is always valid
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components of the (undirected view of
// the) graph, each as a sorted slice of node IDs, largest first.
func (g *Graph) Components() [][]int {
	u := g
	if g.directed {
		u = g.Undirected()
	}
	n := len(u.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		queue := []int{s}
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, e := range u.adj[v] {
				if comp[e.to] == -1 {
					comp[e.to] = id
					queue = append(queue, e.to)
				}
			}
		}
		comps = append(comps, queue)
	}
	// Largest first; members are already ascending by BFS from the smallest
	// unvisited node, but sort defensively.
	for _, c := range comps {
		sortInts(c)
	}
	sortBySizeDesc(comps)
	return comps
}

// Dijkstra computes single-source shortest paths by weight from src.
// Unreachable nodes get +Inf distance and parent -1. Negative weights are
// not supported (results are undefined, as with the classical algorithm the
// paper references).
func (g *Graph) Dijkstra(src int) (dist []float64, parent []int) {
	n := len(g.adj)
	dist = make([]float64, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if src < 0 || src >= n {
		return dist, parent
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				parent[e.to] = it.node
				heap.Push(pq, distItem{node: e.to, d: nd})
			}
		}
	}
	return dist, parent
}

// PathTo reconstructs the path ending at dst from a parent array as produced
// by BFS or Dijkstra. It returns nil if dst is unreachable (parent -1 and
// not a source with dist 0 — callers pass the source explicitly).
func PathTo(parent []int, src, dst int) []int {
	if dst < 0 || dst >= len(parent) {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			// reverse and return
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		if len(rev) > len(parent) {
			return nil // cycle guard for corrupted parent arrays
		}
	}
	return nil
}

// Diameter returns the largest finite hop-count eccentricity over all nodes
// (ignoring unreachable pairs) and whether the graph had at least one
// reachable pair. The all-sources sweep runs on a CSR snapshot with reused
// scratch, so it allocates O(n) once instead of per source.
func (g *Graph) Diameter() (int, bool) {
	n := len(g.adj)
	c := g.Freeze()
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	best := int32(-1)
	for s := 0; s < n; s++ {
		queue, _ = c.BFSInto(s, dist, queue) // s ranges over valid nodes
		for _, d := range dist {
			if d > best {
				best = d
			}
		}
	}
	return int(best), best >= 0
}

type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func sortInts(xs []int) { sort.Ints(xs) }

func sortBySizeDesc(cs [][]int) {
	sort.SliceStable(cs, func(i, j int) bool { return len(cs[i]) > len(cs[j]) })
}
