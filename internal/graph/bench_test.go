package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int, avgDeg float64, directed bool) *Graph {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	g := New(n)
	if directed {
		g = NewDirected(n)
	}
	m := int(avgDeg * float64(n) / 2)
	for k := 0; k < m; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			_ = g.AddWeightedEdge(u, v, float64(1+r.Intn(9)))
		}
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 10000, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(b, 10000, 8, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % g.N())
	}
}

func BenchmarkSCC(b *testing.B) {
	g := benchGraph(b, 10000, 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StronglyConnectedComponents()
	}
}

func BenchmarkMST(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	g := New(5000)
	for v := 1; v < 5000; v++ {
		_ = g.AddWeightedEdge(r.Intn(v), v, float64(1+r.Intn(99)))
	}
	for k := 0; k < 15000; k++ {
		u, v := r.Intn(5000), r.Intn(5000)
		if u != v {
			_ = g.AddWeightedEdge(u, v, float64(1+r.Intn(99)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MinimumSpanningTree(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubgraph(b *testing.B) {
	g := benchGraph(b, 10000, 8, false)
	keep := map[int]bool{}
	for v := 0; v < 5000; v++ {
		keep[v] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Subgraph(keep)
	}
}
