package graph

// StronglyConnectedComponents returns the strongly connected components of a
// directed graph (Tarjan's algorithm, iterative to avoid deep recursion on
// large inputs), each as a sorted slice of node IDs, largest first. For an
// undirected graph it coincides with Components.
func (g *Graph) StronglyConnectedComponents() [][]int {
	if !g.directed {
		return g.Components()
	}
	n := len(g.adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		comps   [][]int
	)

	type frame struct {
		v, edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(g.adj[f.v]) {
				w := g.adj[f.v][f.edge].to
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop frame, maybe emit a component.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	sortBySizeDesc(comps)
	return comps
}

// LargestSCC returns the induced subgraph on the largest strongly connected
// component and the newID -> oldID mapping.
func (g *Graph) LargestSCC() (*Graph, []int) {
	comps := g.StronglyConnectedComponents()
	if len(comps) == 0 {
		return New(0), nil
	}
	keep := make(map[int]bool, len(comps[0]))
	for _, v := range comps[0] {
		keep[v] = true
	}
	return g.Subgraph(keep)
}
