package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Node labels are their IDs;
// optional per-node attributes can be supplied (nil entries are skipped).
func (g *Graph) DOT(name string, nodeAttrs map[int]string) string {
	var b strings.Builder
	kind, sep := "graph", "--"
	if g.directed {
		kind, sep = "digraph", "->"
	}
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&b, "%s %s {\n", kind, name)
	for v := 0; v < len(g.adj); v++ {
		if attr, ok := nodeAttrs[v]; ok && attr != "" {
			fmt.Fprintf(&b, "  %d [%s];\n", v, attr)
		} else {
			fmt.Fprintf(&b, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		if e.Weight != 1 {
			fmt.Fprintf(&b, "  %d %s %d [label=\"%g\"];\n", e.From, sep, e.To, e.Weight)
		} else {
			fmt.Fprintf(&b, "  %d %s %d;\n", e.From, sep, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String returns a compact one-line description, e.g. "undirected n=5 m=4".
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s n=%d m=%d", kind, len(g.adj), g.edges)
}
