package graph

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the stable serialization schema.
type graphJSON struct {
	Directed bool       `json:"directed"`
	N        int        `json:"n"`
	Edges    []edgeJSON `json:"edges"`
}

type edgeJSON struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Weight float64 `json:"weight,omitempty"`
}

// MarshalJSON implements json.Marshaler: a graph serializes to its node
// count, direction flag, and edge list (weight omitted when 1).
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := graphJSON{Directed: g.directed, N: g.N()}
	for _, e := range g.Edges() {
		je := edgeJSON{From: e.From, To: e.To}
		if e.Weight != 1 {
			je.Weight = e.Weight
		}
		doc.Edges = append(doc.Edges, je)
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler, replacing the receiver's
// contents with the decoded graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var doc graphJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.N < 0 {
		return fmt.Errorf("graph: negative node count %d", doc.N)
	}
	fresh := Graph{directed: doc.Directed, adj: make([][]halfEdge, doc.N)}
	if doc.Directed {
		fresh.indeg = make([]int, doc.N)
	}
	*g = fresh
	for _, e := range doc.Edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if err := g.AddWeightedEdge(e.From, e.To, w); err != nil {
			return err
		}
	}
	return nil
}
