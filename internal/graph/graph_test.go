package graph

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(i, i+1)
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 || g.Directed() {
		t.Fatalf("unexpected fresh graph %v", g)
	}
	mustEdge(t, g, 0, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge must be visible from both sides")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %v, want [1 1 0]", g.Degrees())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 5); !errors.Is(err, ErrNodeRange) {
		t.Errorf("out-of-range edge: got %v, want ErrNodeRange", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrNodeRange) {
		t.Errorf("negative node: got %v, want ErrNodeRange", err)
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop should error")
	}
}

func TestDirectedEdges(t *testing.T) {
	g := NewDirected(3)
	mustEdge(t, g, 0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edge must be one-way")
	}
	if g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Errorf("InDegree: got %d,%d", g.InDegree(1), g.InDegree(0))
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report true")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge should be gone from both sides")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.RemoveEdge(0, 1) {
		t.Error("second removal should report false")
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.N() != 2 {
		t.Errorf("AddNode = %d (n=%d), want 1 (n=2)", id, g.N())
	}
	mustEdge(t, g, 0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("edge to added node missing")
	}
}

func TestWeight(t *testing.T) {
	g := New(2)
	if err := g.AddWeightedEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	w, err := g.Weight(0, 1)
	if err != nil || w != 2.5 {
		t.Errorf("Weight = %v, %v; want 2.5", w, err)
	}
	if _, err := g.Weight(1, 0); err != nil {
		t.Error("undirected weight should be symmetric")
	}
	g2 := New(2)
	if _, err := g2.Weight(0, 1); err == nil {
		t.Error("missing edge should error")
	}
}

func TestNeighborsAndEach(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	nbrs := g.Neighbors(0)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Errorf("Neighbors = %v, want [1 2]", nbrs)
	}
	var count int
	g.EachNeighbor(0, func(to int, w float64) {
		count++
		if w != 1 {
			t.Errorf("weight = %v, want 1", w)
		}
	})
	if count != 2 {
		t.Errorf("EachNeighbor visited %d, want 2", count)
	}
	if g.Neighbors(-1) != nil || g.Neighbors(99) != nil {
		t.Error("out-of-range Neighbors should be nil")
	}
}

func TestEdgesOnceUndirected(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 1, 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges = %v, want 2 entries", es)
	}
	for _, e := range es {
		if e.From >= e.To {
			t.Errorf("undirected edge %v should have From < To", e)
		}
	}
}

func TestBFS(t *testing.T) {
	g := path(5)
	dist, parent, _ := g.BFS(0)
	for i := 0; i < 5; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	p := PathTo(parent, 0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	dist, parent, _ := g.BFS(0)
	if dist[2] != -1 || parent[2] != -1 {
		t.Error("unreachable node should have dist/parent -1")
	}
	if PathTo(parent, 0, 2) != nil {
		t.Error("PathTo unreachable should be nil")
	}
}

func TestDFSOrder(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	order := g.DFS(0)
	want := []int{0, 1, 3, 2}
	if len(order) != len(want) {
		t.Fatalf("DFS = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DFS = %v, want %v", order, want)
		}
	}
	if g.DFS(-1) != nil {
		t.Error("DFS out of range should be nil")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	if g.Connected() {
		t.Error("graph with isolated pieces is not connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
	if len(comps[0]) != 2 {
		t.Errorf("largest component size = %d, want 2", len(comps[0]))
	}
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	if !g.Connected() {
		t.Error("now connected")
	}
	if New(0).Connected() != true || New(1).Connected() != true {
		t.Error("trivial graphs are connected")
	}
}

func TestDijkstra(t *testing.T) {
	g := New(4)
	_ = g.AddWeightedEdge(0, 1, 1)
	_ = g.AddWeightedEdge(1, 2, 1)
	_ = g.AddWeightedEdge(0, 2, 5)
	_ = g.AddWeightedEdge(2, 3, 1)
	dist, parent := g.Dijkstra(0)
	if dist[2] != 2 {
		t.Errorf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
	if dist[3] != 3 {
		t.Errorf("dist[3] = %v, want 3", dist[3])
	}
	p := PathTo(parent, 0, 3)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(2)
	dist, _ := g.Dijkstra(0)
	if !math.IsInf(dist[1], 1) {
		t.Errorf("unreachable dist = %v, want +Inf", dist[1])
	}
}

func TestDiameter(t *testing.T) {
	d, ok := path(5).Diameter()
	if !ok || d != 4 {
		t.Errorf("Diameter = %d,%v; want 4,true", d, ok)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	sub, olds := g.Subgraph(map[int]bool{1: true, 2: true, 3: true})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("subgraph %v, want n=3 m=2", sub)
	}
	if len(olds) != 3 || olds[0] != 1 || olds[2] != 3 {
		t.Errorf("olds = %v, want [1 2 3]", olds)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("subgraph edges wrong")
	}
}

func TestClone(t *testing.T) {
	g := path(3)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("clone mutation leaked into original")
	}
}

func TestUndirectedView(t *testing.T) {
	g := NewDirected(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	mustEdge(t, g, 1, 2)
	u := g.Undirected()
	if u.Directed() {
		t.Fatal("Undirected() returned a directed graph")
	}
	if u.M() != 2 {
		t.Errorf("undirected M = %d, want 2 (0-1 collapsed)", u.M())
	}
}

func TestSCC(t *testing.T) {
	g := NewDirected(6)
	// Two cycles {0,1,2} and {3,4}, plus isolated 5; bridge 2->3.
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 3)
	mustEdge(t, g, 2, 3)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("SCCs = %v, want 3", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("largest SCC = %v, want [0 1 2]", comps[0])
	}
	sub, olds := g.LargestSCC()
	if sub.N() != 3 || len(olds) != 3 {
		t.Errorf("LargestSCC n = %d, want 3", sub.N())
	}
}

func TestSCCLargeCycleIterative(t *testing.T) {
	// A 100k-node cycle would blow the stack with recursive Tarjan.
	n := 100000
	g := NewDirected(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(i, (i+1)%n)
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("giant cycle should be one SCC, got %d comps", len(comps))
	}
}

func TestMST(t *testing.T) {
	g := New(4)
	_ = g.AddWeightedEdge(0, 1, 1)
	_ = g.AddWeightedEdge(1, 2, 2)
	_ = g.AddWeightedEdge(2, 3, 1)
	_ = g.AddWeightedEdge(0, 3, 10)
	_ = g.AddWeightedEdge(0, 2, 10)
	tree, err := g.MinimumSpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 3 {
		t.Fatalf("MST edges = %d, want 3", len(tree))
	}
	if w := TotalWeight(tree); w != 4 {
		t.Errorf("MST weight = %v, want 4", w)
	}
}

func TestMSTErrors(t *testing.T) {
	if _, err := New(3).MinimumSpanningTree(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected MST: got %v, want ErrDisconnected", err)
	}
	if _, err := NewDirected(2).MinimumSpanningTree(); err == nil {
		t.Error("directed MST should error")
	}
	if tree, err := New(0).MinimumSpanningTree(); err != nil || tree != nil {
		t.Error("empty MST should be nil, nil")
	}
}

func TestSpanningTrees(t *testing.T) {
	g := path(4)
	parent, err := g.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if parent[3] != 2 || parent[0] != -1 {
		t.Errorf("parents = %v", parent)
	}
	if _, err := New(3).SpanningTree(0); err == nil {
		t.Error("disconnected SpanningTree should error")
	}
	spt, err := g.ShortestPathTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if spt[3] != 2 {
		t.Errorf("SPT parents = %v", spt)
	}
	if _, err := New(3).ShortestPathTree(0); err == nil {
		t.Error("disconnected ShortestPathTree should error")
	}
}

func TestSortEdgesByWeight(t *testing.T) {
	es := []Edge{{0, 1, 3}, {1, 2, 1}, {0, 2, 1}}
	SortEdgesByWeight(es)
	if es[0].Weight != 1 || es[0].From != 0 || es[0].To != 2 {
		t.Errorf("sorted = %v", es)
	}
	if es[2].Weight != 3 {
		t.Errorf("sorted = %v", es)
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1)
	dot := g.DOT("test", map[int]string{0: `color="black"`})
	for _, want := range []string{"graph test", "0 -- 1", `0 [color="black"]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	d := NewDirected(2)
	mustEdge(t, d, 0, 1)
	if !strings.Contains(d.DOT("", nil), "0 -> 1") {
		t.Error("directed DOT should use ->")
	}
	wg := New(2)
	_ = wg.AddWeightedEdge(0, 1, 2.5)
	if !strings.Contains(wg.DOT("", nil), `label="2.5"`) {
		t.Error("weighted DOT should carry labels")
	}
}

func TestString(t *testing.T) {
	if s := New(3).String(); s != "undirected n=3 m=0" {
		t.Errorf("String = %q", s)
	}
	if s := NewDirected(1).String(); s != "directed n=1 m=0" {
		t.Errorf("String = %q", s)
	}
}

func randomGraph(r *rand.Rand, n int, p float64, directed bool) *Graph {
	var g *Graph
	if directed {
		g = NewDirected(n)
	} else {
		g = New(n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if r.Float64() < p {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Property: BFS distances obey the triangle inequality along any edge.
func TestBFSDistanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 2+r.Intn(30), 0.2, false)
		dist, _, _ := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.From], dist[e.To]
			if du == -1 && dv == -1 {
				continue
			}
			if du == -1 || dv == -1 {
				t.Fatalf("edge %v crosses reachable/unreachable", e)
			}
			if du-dv > 1 || dv-du > 1 {
				t.Fatalf("BFS dist differs by >1 across edge %v (%d vs %d)", e, du, dv)
			}
		}
	}
}

// Property: Dijkstra with unit weights equals BFS.
func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 2+r.Intn(30), 0.15, trial%2 == 0)
		bd, _, _ := g.BFS(0)
		dd, _ := g.Dijkstra(0)
		for v := range bd {
			if bd[v] == -1 {
				if !math.IsInf(dd[v], 1) {
					t.Fatalf("node %d: BFS unreachable but Dijkstra %v", v, dd[v])
				}
				continue
			}
			if float64(bd[v]) != dd[v] {
				t.Fatalf("node %d: BFS %d vs Dijkstra %v", v, bd[v], dd[v])
			}
		}
	}
}

// Property: components partition the node set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, n, 0.1, false)
		comps := g.Components()
		seen := make(map[int]int)
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		// Sizes must be non-increasing.
		for i := 1; i < len(comps); i++ {
			if len(comps[i]) > len(comps[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MST weight is invariant across edge insertion order.
func TestMSTOrderInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(20)
		type we struct {
			u, v int
			w    float64
		}
		var edges []we
		// Random connected graph: random tree + extra edges.
		for v := 1; v < n; v++ {
			edges = append(edges, we{r.Intn(v), v, float64(1 + r.Intn(100))})
		}
		for k := 0; k < n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				edges = append(edges, we{u, v, float64(1 + r.Intn(100))})
			}
		}
		g1 := New(n)
		for _, e := range edges {
			_ = g1.AddWeightedEdge(e.u, e.v, e.w)
		}
		g2 := New(n)
		for i := len(edges) - 1; i >= 0; i-- {
			_ = g2.AddWeightedEdge(edges[i].u, edges[i].v, edges[i].w)
		}
		t1, err1 := g1.MinimumSpanningTree()
		t2, err2 := g2.MinimumSpanningTree()
		if err1 != nil || err2 != nil {
			t.Fatalf("MST errors: %v, %v", err1, err2)
		}
		if TotalWeight(t1) != TotalWeight(t2) {
			t.Fatalf("MST weight differs across insertion order: %v vs %v", TotalWeight(t1), TotalWeight(t2))
		}
	}
}

func TestPathToCorruptedParents(t *testing.T) {
	// A parent array with a cycle must not hang PathTo.
	parent := []int{1, 0, 1}
	if p := PathTo(parent, 9, 2); p != nil {
		t.Errorf("cyclic parents should yield nil, got %v", p)
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := path(3)
	for _, src := range []int{-1, 3, 99} {
		if _, _, err := g.BFS(src); err == nil {
			t.Errorf("BFS(%d) should error on an out-of-range source", src)
		}
	}
}

func TestUndirectedNoParallelEdges(t *testing.T) {
	// Both directions of every link exist; the undirected view must
	// deduplicate them into simple edges, never parallel copies.
	g := NewDirected(4)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}} {
		mustEdge(t, g, e[0], e[1])
	}
	u := g.Undirected()
	if u.M() != 3 {
		t.Fatalf("undirected M = %d, want 3", u.M())
	}
	for v := 0; v < u.N(); v++ {
		seen := map[int]int{}
		for _, w := range u.Neighbors(v) {
			seen[w]++
			if seen[w] > 1 {
				t.Fatalf("parallel edge %d-%d in undirected view", v, w)
			}
		}
	}
}
