package graph

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooLarge reports a graph whose node or half-edge count exceeds the
// int32 CSR layout. The limit is structural — offsets and targets are int32
// so that million-node rounds stay cache-resident — and the error is typed
// so batch loaders can detect the condition instead of truncating.
var ErrTooLarge = errors.New("graph: exceeds int32 CSR range")

// CheckCSRBounds verifies that a graph with n nodes and half half-edges
// fits the int32 CSR layout. It is the single bounds gate for Freeze,
// FreezeChecked, and NewCSR, and is exported so loaders can pre-validate
// sizes (a 10M-node/100M-edge ingest) before allocating anything.
func CheckCSRBounds(n, half int) error {
	if int64(n) >= math.MaxInt32 {
		return fmt.Errorf("%w: n=%d (max %d)", ErrTooLarge, n, math.MaxInt32-1)
	}
	if int64(half) > math.MaxInt32 {
		return fmt.Errorf("%w: half-edges=%d (max %d)", ErrTooLarge, half, math.MaxInt32)
	}
	return nil
}

// CSR is an immutable compressed-sparse-row snapshot of a Graph: the whole
// adjacency structure flattened into three arrays so that repeated
// whole-graph sweeps (the round kernel, centrality iterations, BFS
// batteries) walk contiguous memory instead of chasing per-node slices.
// Neighbor IDs are int32 — a quarter of the traffic of the 16-byte
// halfEdge — which is what makes million-node rounds cache-resident.
//
// A CSR is built once with Graph.Freeze and never mutated; later changes to
// the source graph are not reflected (snapshot semantics). All methods are
// safe for concurrent use. Row order matches the graph's adjacency
// (insertion) order exactly, so algorithms that are sensitive to neighbor
// order produce bit-identical results on either representation.
type CSR struct {
	directed bool
	m        int // edge count as reported by Graph.M

	// Forward adjacency: row v is targets[offsets[v]:offsets[v+1]], with
	// weights parallel to targets.
	offsets []int32
	targets []int32
	weights []float64

	// Reverse adjacency (directed graphs only; nil otherwise): row v is
	// inSources[inOffsets[v]:inOffsets[v+1]], listing the tails of edges
	// into v in ascending source order, inWeights parallel.
	inOffsets []int32
	inSources []int32
	inWeights []float64
}

// Freeze builds a CSR snapshot of g. The snapshot is immutable: mutating g
// afterwards does not affect it. For directed graphs the reverse adjacency
// (in-neighbors) is materialized as well. Graphs that exceed the int32 CSR
// layout panic with a descriptive message; use FreezeChecked where the
// caller wants the typed error instead.
func (g *Graph) Freeze() *CSR {
	c, err := g.FreezeChecked()
	if err != nil {
		panic(fmt.Sprintf("graph: cannot freeze to CSR: %v", err))
	}
	return c
}

// FreezeChecked is Freeze with the size gate surfaced as a typed error:
// a graph whose node or half-edge count exceeds the int32 offset/target
// layout returns an error wrapping ErrTooLarge instead of panicking (and
// never silently truncates). Production-scale loaders freezing graphs near
// the 10M-node/100M-edge regime should prefer this entry point.
func (g *Graph) FreezeChecked() (*CSR, error) {
	n := len(g.adj)
	half := 0
	for _, lst := range g.adj {
		half += len(lst)
	}
	if err := CheckCSRBounds(n, half); err != nil {
		return nil, err
	}
	c := &CSR{
		directed: g.directed,
		m:        g.edges,
		offsets:  make([]int32, n+1),
		targets:  make([]int32, half),
		weights:  make([]float64, half),
	}
	pos := int32(0)
	for v, lst := range g.adj {
		c.offsets[v] = pos
		for _, e := range lst {
			c.targets[pos] = int32(e.to)
			c.weights[pos] = e.w
			pos++
		}
	}
	c.offsets[n] = pos
	if g.directed {
		c.buildReverse()
	}
	return c, nil
}

// NewCSR assembles a CSR directly from flat adjacency arrays, for callers
// that already hold the row layout (shard-local views, decoded snapshots)
// and must not pay an intermediate *Graph. offsets must have length n+1,
// start at 0, be non-decreasing, and end at len(targets); every target must
// be a valid node ID. weights may be nil (all edges weightless, backed by a
// zero array) or parallel to targets. m is the edge count reported by M —
// it is the caller's accounting unit (an undirected CSR's half-edge count
// is 2m only when no self-loops exist, so it cannot be derived here). The
// arrays are retained, not copied: the caller must not mutate them after
// the call. For directed CSRs the reverse adjacency is materialized.
func NewCSR(directed bool, m int, offsets, targets []int32, weights []float64) (*CSR, error) {
	if len(offsets) < 1 {
		return nil, errors.New("graph: NewCSR needs at least one offset (n+1 entries)")
	}
	n := len(offsets) - 1
	if err := CheckCSRBounds(n, len(targets)); err != nil {
		return nil, err
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: NewCSR offsets must start at 0, got %d", offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: NewCSR offsets decrease at node %d (%d -> %d)", v, offsets[v], offsets[v+1])
		}
	}
	if int(offsets[n]) != len(targets) {
		return nil, fmt.Errorf("graph: NewCSR offsets end at %d but there are %d targets", offsets[n], len(targets))
	}
	for i, t := range targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("%w: %d (target %d, n=%d)", ErrNodeRange, t, i, n)
		}
	}
	if weights == nil {
		weights = make([]float64, len(targets))
	} else if len(weights) != len(targets) {
		return nil, fmt.Errorf("graph: NewCSR has %d weights for %d targets", len(weights), len(targets))
	}
	if m < 0 {
		return nil, fmt.Errorf("graph: NewCSR negative edge count %d", m)
	}
	c := &CSR{directed: directed, m: m, offsets: offsets, targets: targets, weights: weights}
	if directed {
		c.buildReverse()
	}
	return c, nil
}

// buildReverse fills the reverse-CSR arrays by a counting sort over the
// forward targets, yielding in-neighbor rows ordered by ascending source.
func (c *CSR) buildReverse() {
	n := c.N()
	c.inOffsets = make([]int32, n+1)
	for _, t := range c.targets {
		c.inOffsets[t+1]++
	}
	for v := 0; v < n; v++ {
		c.inOffsets[v+1] += c.inOffsets[v]
	}
	c.inSources = make([]int32, len(c.targets))
	c.inWeights = make([]float64, len(c.targets))
	cursor := make([]int32, n)
	copy(cursor, c.inOffsets[:n])
	for u := 0; u < n; u++ {
		for i := c.offsets[u]; i < c.offsets[u+1]; i++ {
			t := c.targets[i]
			c.inSources[cursor[t]] = int32(u)
			c.inWeights[cursor[t]] = c.weights[i]
			cursor[t]++
		}
	}
}

// N returns the number of nodes.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// M returns the number of edges (each undirected edge counted once),
// matching Graph.M of the frozen graph.
func (c *CSR) M() int { return c.m }

// Directed reports whether the frozen graph was directed.
func (c *CSR) Directed() bool { return c.directed }

// Degree returns the out-degree of v (0 for out-of-range v, like Graph).
func (c *CSR) Degree(v int) int {
	if v < 0 || v >= c.N() {
		return 0
	}
	return int(c.offsets[v+1] - c.offsets[v])
}

// Neighbors returns the out-neighbors of v in adjacency order as a
// zero-copy view into the CSR. The slice must not be modified; it remains
// valid (and immutable) for the lifetime of the CSR.
func (c *CSR) Neighbors(v int) []int32 {
	if v < 0 || v >= c.N() {
		return nil
	}
	return c.targets[c.offsets[v]:c.offsets[v+1]]
}

// NeighborWeights returns the edge weights of v's out-edges, parallel to
// Neighbors(v), as a zero-copy view. The slice must not be modified.
func (c *CSR) NeighborWeights(v int) []float64 {
	if v < 0 || v >= c.N() {
		return nil
	}
	return c.weights[c.offsets[v]:c.offsets[v+1]]
}

// EachNeighbor calls fn for every out-neighbor (with edge weight) of v in
// adjacency order, mirroring Graph.EachNeighbor.
func (c *CSR) EachNeighbor(v int, fn func(to int, w float64)) {
	if v < 0 || v >= c.N() {
		return
	}
	for i := c.offsets[v]; i < c.offsets[v+1]; i++ {
		fn(int(c.targets[i]), c.weights[i])
	}
}

// HasEdge reports whether an edge u->v exists (either direction reaches it
// on undirected graphs, exactly like Graph.HasEdge).
func (c *CSR) HasEdge(u, v int) bool {
	if u < 0 || u >= c.N() {
		return false
	}
	t := int32(v)
	for _, w := range c.targets[c.offsets[u]:c.offsets[u+1]] {
		if w == t {
			return true
		}
	}
	return false
}

// InDegree returns the in-degree of v: for undirected graphs the plain
// degree, for directed graphs an O(1) reverse-CSR lookup.
func (c *CSR) InDegree(v int) int {
	if !c.directed {
		return c.Degree(v)
	}
	if v < 0 || v >= c.N() {
		return 0
	}
	return int(c.inOffsets[v+1] - c.inOffsets[v])
}

// InDegrees returns every node's in-degree in one O(n) pass.
func (c *CSR) InDegrees() []int {
	n := c.N()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = c.InDegree(v)
	}
	return out
}

// InNeighbors returns the in-neighbors of v as a zero-copy view: for
// directed graphs the reverse-CSR row (sources in ascending order), for
// undirected graphs the same row as Neighbors. The slice must not be
// modified.
func (c *CSR) InNeighbors(v int) []int32 {
	if !c.directed {
		return c.Neighbors(v)
	}
	if v < 0 || v >= c.N() {
		return nil
	}
	return c.inSources[c.inOffsets[v]:c.inOffsets[v+1]]
}

// InNeighborWeights returns the weights of v's in-edges, parallel to
// InNeighbors(v), as a zero-copy view. The slice must not be modified.
func (c *CSR) InNeighborWeights(v int) []float64 {
	if !c.directed {
		return c.NeighborWeights(v)
	}
	if v < 0 || v >= c.N() {
		return nil
	}
	return c.inWeights[c.inOffsets[v]:c.inOffsets[v+1]]
}

// Degrees returns the out-degree of every node.
func (c *CSR) Degrees() []int {
	n := c.N()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = int(c.offsets[v+1] - c.offsets[v])
	}
	return out
}

// BFSInto runs an unweighted BFS from src over the forward adjacency,
// filling dist (which must have length N) with hop distances, -1 for
// unreachable nodes. queue is scratch space reused across calls: give it
// capacity N and the whole sweep is allocation-free. It returns the
// possibly regrown queue so callers can keep reusing it, and an error for
// an out-of-range src (matching Graph.BFS).
func (c *CSR) BFSInto(src int, dist []int32, queue []int32) ([]int32, error) {
	n := c.N()
	if src < 0 || src >= n {
		return queue, fmt.Errorf("%w: %d (n=%d)", ErrNodeRange, src, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			if dist[w] == -1 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return queue, nil
}
