package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrDisconnected is returned by spanning-structure constructions that need
// a connected input.
var ErrDisconnected = errors.New("graph: graph is not connected")

// MinimumSpanningTree returns the edges of an MST of an undirected connected
// graph (Prim's algorithm with a heap). It errors for directed or
// disconnected inputs.
func (g *Graph) MinimumSpanningTree() ([]Edge, error) {
	if g.directed {
		return nil, errors.New("graph: MST requires an undirected graph")
	}
	n := len(g.adj)
	if n == 0 {
		return nil, nil
	}
	inTree := make([]bool, n)
	var tree []Edge
	pq := &mstHeap{}
	inTree[0] = true
	for _, e := range g.adj[0] {
		heap.Push(pq, Edge{From: 0, To: e.to, Weight: e.w})
	}
	for pq.Len() > 0 && len(tree) < n-1 {
		e := heap.Pop(pq).(Edge)
		if inTree[e.To] {
			continue
		}
		inTree[e.To] = true
		tree = append(tree, e)
		for _, next := range g.adj[e.To] {
			if !inTree[next.to] {
				heap.Push(pq, Edge{From: e.To, To: next.to, Weight: next.w})
			}
		}
	}
	if len(tree) != n-1 {
		return nil, ErrDisconnected
	}
	return tree, nil
}

// SpanningTree returns a BFS spanning tree rooted at root as a child
// adjacency structure (parent array). It errors if the graph is
// disconnected from root.
func (g *Graph) SpanningTree(root int) (parent []int, err error) {
	if err := g.check(root); err != nil {
		return nil, err
	}
	dist, parent, err := g.BFS(root)
	if err != nil {
		return nil, err
	}
	for v, d := range dist {
		if d == -1 {
			return nil, fmt.Errorf("graph: node %d unreachable from root %d", v, root)
		}
	}
	return parent, nil
}

// ShortestPathTree returns the Dijkstra parent array rooted at root, erroring
// if any node is unreachable.
func (g *Graph) ShortestPathTree(root int) (parent []int, err error) {
	if err := g.check(root); err != nil {
		return nil, err
	}
	dist, parent := g.Dijkstra(root)
	for v, d := range dist {
		if d != d || d > maxFinite { // NaN or +Inf
			return nil, fmt.Errorf("graph: node %d unreachable from root %d", v, root)
		}
	}
	return parent, nil
}

const maxFinite = 1e308

// TotalWeight sums the weights of edges.
func TotalWeight(edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// SortEdgesByWeight sorts edges ascending by weight (stable, ties by
// endpoints) — used by Kruskal-style constructions and tests.
func SortEdgesByWeight(edges []Edge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
}

type mstHeap []Edge

func (h mstHeap) Len() int            { return len(h) }
func (h mstHeap) Less(i, j int) bool  { return h[i].Weight < h[j].Weight }
func (h mstHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mstHeap) Push(x interface{}) { *h = append(*h, x.(Edge)) }
func (h *mstHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
