package graph

import "fmt"

// FromEdges bulk-builds a graph from an indexed edge source in two passes:
// degrees are counted first, then every half-edge is laid down into a single
// shared arena, so construction does exactly two allocations regardless of
// m — no per-append growth, no reallocation, no memmove churn. This is the
// recovery hot path: snapshot decode calls it with hundreds of thousands of
// edges, and its cost bounds crash-recovery ready time.
//
// The edge callback is invoked twice per index and must be deterministic.
// Endpoints are validated like AddWeightedEdge (range-checked, self-loops
// rejected); parallel edges are allowed, matching the incremental API.
// Adjacency slices are capacity-clipped into the arena, so a later AddEdge
// on the built graph reallocates that node's list instead of clobbering a
// neighbor's.
func FromEdges(n int, directed bool, m int, edge func(i int) (u, v int, w float64)) (*Graph, error) {
	var g *Graph
	if directed {
		g = NewDirected(n)
	} else {
		g = New(n)
	}
	deg := make([]int, n)
	for i := 0; i < m; i++ {
		u, v, _ := edge(i)
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: edge %d (%d,%d) with n=%d", ErrNodeRange, i, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		deg[u]++
		if directed {
			g.indeg[v]++
		} else {
			deg[v]++
		}
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	arena := make([]halfEdge, total)
	next := make([]int, n)
	start := 0
	for i, d := range deg {
		next[i] = start
		start += d
	}
	for i := 0; i < m; i++ {
		u, v, w := edge(i)
		arena[next[u]] = halfEdge{to: v, w: w}
		next[u]++
		if !directed {
			arena[next[v]] = halfEdge{to: u, w: w}
			next[v]++
		}
	}
	start = 0
	for i, d := range deg {
		g.adj[i] = arena[start : start+d : start+d]
		start += d
	}
	g.edges = m
	return g, nil
}
