package graph

import (
	"math/rand"
	"testing"
)

// randomMutatedGraph builds a random multigraph-free graph with n nodes and up to
// tries edge-insertion attempts, plus a sprinkle of removals so the indeg
// cache and CSR are exercised on post-removal adjacency too.
func randomMutatedGraph(r *rand.Rand, n int, tries int, directed bool) *Graph {
	var g *Graph
	if directed {
		g = NewDirected(n)
	} else {
		g = New(n)
	}
	type pair struct{ u, v int }
	var added []pair
	for i := 0; i < tries; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddWeightedEdge(u, v, r.Float64()*10); err != nil {
			panic(err)
		}
		added = append(added, pair{u, v})
	}
	// Remove ~1/8 of the edges that went in.
	for _, p := range added {
		if r.Intn(8) == 0 {
			g.RemoveEdge(p.u, p.v)
		}
	}
	return g
}

// bruteInDegrees recomputes in-degrees by scanning the adjacency, ignoring
// the incremental cache.
func bruteInDegrees(g *Graph) []int {
	out := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		g.EachNeighbor(u, func(v int, _ float64) { out[v]++ })
	}
	return out
}

// TestCSRMatchesGraph is the randomized property test: every CSR accessor
// must agree with the Graph it was frozen from, on directed and undirected
// graphs alike.
func TestCSRMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		directed := trial%2 == 1
		n := 1 + r.Intn(30)
		g := randomMutatedGraph(r, n, 3*n, directed)
		c := g.Freeze()

		if c.N() != g.N() || c.M() != g.M() || c.Directed() != g.Directed() {
			t.Fatalf("trial %d: N/M/Directed mismatch: csr (%d,%d,%v) vs graph (%d,%d,%v)",
				trial, c.N(), c.M(), c.Directed(), g.N(), g.M(), g.Directed())
		}
		for v := 0; v < n; v++ {
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("trial %d: Degree(%d): csr %d vs graph %d", trial, v, c.Degree(v), g.Degree(v))
			}
			if c.InDegree(v) != g.InDegree(v) {
				t.Fatalf("trial %d: InDegree(%d): csr %d vs graph %d", trial, v, c.InDegree(v), g.InDegree(v))
			}
			// Neighbor order must match adjacency (insertion) order exactly.
			want := g.Neighbors(v)
			got := c.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Neighbors(%d) length: csr %d vs graph %d", trial, v, len(got), len(want))
			}
			ws := c.NeighborWeights(v)
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("trial %d: Neighbors(%d)[%d]: csr %d vs graph %d", trial, v, i, got[i], want[i])
				}
				w, err := g.Weight(v, want[i])
				if err != nil {
					t.Fatalf("trial %d: Weight(%d,%d): %v", trial, v, want[i], err)
				}
				if ws[i] != w {
					t.Fatalf("trial %d: weight of %d->%d: csr %g vs graph %g", trial, v, want[i], ws[i], w)
				}
			}
			for u := 0; u < n; u++ {
				if c.HasEdge(v, u) != g.HasEdge(v, u) {
					t.Fatalf("trial %d: HasEdge(%d,%d): csr %v vs graph %v", trial, v, u, c.HasEdge(v, u), g.HasEdge(v, u))
				}
			}
		}
		// Bulk accessors against brute force.
		brute := bruteInDegrees(g)
		cin, gin := c.InDegrees(), g.InDegrees()
		for v := 0; v < n; v++ {
			if cin[v] != brute[v] || gin[v] != brute[v] {
				t.Fatalf("trial %d: InDegrees[%d]: csr %d graph %d brute %d", trial, v, cin[v], gin[v], brute[v])
			}
		}
		// InNeighbors must cover exactly the brute in-edges; for directed
		// graphs the reverse CSR additionally promises ascending source order.
		for v := 0; v < n; v++ {
			ins := c.InNeighbors(v)
			if len(ins) != brute[v] {
				t.Fatalf("trial %d: InNeighbors(%d) length %d, want %d", trial, v, len(ins), brute[v])
			}
			inw := c.InNeighborWeights(v)
			for i, u := range ins {
				if directed && i > 0 && ins[i-1] > u {
					t.Fatalf("trial %d: InNeighbors(%d) not ascending: %v", trial, v, ins)
				}
				if !g.HasEdge(int(u), v) {
					t.Fatalf("trial %d: InNeighbors(%d) lists %d but graph has no edge %d->%d", trial, v, u, u, v)
				}
				w, err := g.Weight(int(u), v)
				if err != nil {
					t.Fatalf("trial %d: Weight(%d,%d): %v", trial, u, v, err)
				}
				if inw[i] != w {
					t.Fatalf("trial %d: in-weight of %d->%d: csr %g vs graph %g", trial, u, v, inw[i], w)
				}
			}
		}
	}
}

// TestCSRSnapshotStability is the regression test for snapshot semantics: a
// CSR built before a batch of mutations must keep reporting the pre-mutation
// structure.
func TestCSRSnapshotStability(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomMutatedGraph(r, 12, 40, false)
	c := g.Freeze()

	// Record the frozen view.
	wantN, wantM := c.N(), c.M()
	wantNbrs := make([][]int32, wantN)
	for v := 0; v < wantN; v++ {
		wantNbrs[v] = append([]int32(nil), c.Neighbors(v)...)
	}

	// Mutate the source graph heavily: new nodes, new edges, removals.
	g.AddNode()
	g.AddNode()
	for i := 0; i < 30; i++ {
		u, v := r.Intn(g.N()), r.Intn(g.N())
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}

	if c.N() != wantN || c.M() != wantM {
		t.Fatalf("snapshot changed shape after mutation: (%d,%d) vs frozen (%d,%d)", c.N(), c.M(), wantN, wantM)
	}
	for v := 0; v < wantN; v++ {
		got := c.Neighbors(v)
		if len(got) != len(wantNbrs[v]) {
			t.Fatalf("snapshot Neighbors(%d) changed length after mutation", v)
		}
		for i := range got {
			if got[i] != wantNbrs[v][i] {
				t.Fatalf("snapshot Neighbors(%d)[%d] changed after mutation", v, i)
			}
		}
	}
}

// TestInDegreeCache checks the incrementally maintained in-degree cache
// across every mutation path (AddEdge, RemoveEdge, AddNode, Clone, Subgraph)
// against a brute-force adjacency scan.
func TestInDegreeCache(t *testing.T) {
	check := func(t *testing.T, g *Graph, label string) {
		t.Helper()
		brute := bruteInDegrees(g)
		for v := 0; v < g.N(); v++ {
			if got := g.InDegree(v); got != brute[v] {
				t.Fatalf("%s: InDegree(%d) = %d, brute force says %d", label, v, got, brute[v])
			}
		}
	}
	r := rand.New(rand.NewSource(23))
	g := NewDirected(10)
	for i := 0; i < 60; i++ {
		u, v := r.Intn(g.N()), r.Intn(g.N())
		switch {
		case u == v:
		case g.HasEdge(u, v):
			g.RemoveEdge(u, v)
		default:
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			g.AddNode()
		}
		check(t, g, "after mutation")
	}
	check(t, g.Clone(), "clone")
	keep := map[int]bool{}
	for v := 0; v < g.N(); v += 2 {
		keep[v] = true
	}
	sub, _ := g.Subgraph(keep)
	check(t, sub, "subgraph")
}

// TestBFSInto checks CSR.BFSInto against Graph.BFS on random graphs,
// including scratch reuse across sources.
func TestBFSInto(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(25)
		g := randomMutatedGraph(r, n, 2*n, trial%2 == 1)
		c := g.Freeze()
		dist := make([]int32, n)
		var queue []int32
		for src := 0; src < n; src++ {
			want, _, err := g.BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			queue, err = c.BFSInto(src, dist, queue)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < n; v++ {
				if int(dist[v]) != want[v] {
					t.Fatalf("trial %d src %d: dist[%d] = %d, BFS says %d", trial, src, v, dist[v], want[v])
				}
			}
		}
		if _, err := c.BFSInto(-1, dist, queue); err == nil {
			t.Fatalf("trial %d: BFSInto(-1) did not error", trial)
		}
	}
}
