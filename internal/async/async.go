// Package async executes the repository's distributed labeling rules under
// partial synchrony instead of the idealized lock-step round barrier of
// internal/runtime. The paper's schemes (MIS election, distance vectors,
// hypercube safety levels, link reversal) are specified as localized rules;
// Casteigts et al. argue that which structures such rules can compute
// depends critically on the synchrony and delivery assumptions. This
// package removes the strongest assumption — the global round barrier —
// and replaces it with an event-driven message-passing executor:
//
//   - every node owns a bounded mailbox; a full mailbox exerts
//     backpressure on senders (the link holds the message, or the message
//     is shed and recovered by retransmission, per Policy);
//   - every directed link has a seeded delay distribution (fixed, uniform
//     jitter, or bimodal), so messages are delayed, reordered, and — under
//     a fault schedule — lost;
//   - delivery is at-least-once: each transmission arms an ack timeout
//     with exponential backoff, and receivers deduplicate by per-link
//     sequence number, which also restores FIFO-per-link semantics under
//     network reorder (an older state never overwrites a newer one);
//   - individual node loops crash (mailbox and unacked sends lost, state
//     reset to init on restart) and pause (bounded asynchrony) under the
//     same sim.Schedule vocabulary the synchronous harness uses;
//   - a deficit-counting termination detector (the Dijkstra–Scholten
//     deficit generalized to non-diffusing computations, confirmed by the
//     double-probe rule of Mattern's counting schemes) declares a definite
//     quiescence time in virtual ticks, comparable to the synchronous
//     kernel's Stats.History rounds via the RoundTicks window size.
//
// The executor is a deterministic discrete-event simulation: one logical
// event loop orders all activity by (virtual time, scheduling order), every
// random draw comes from a seeded PCG stream or a pure splitmix hash of
// stable identifiers, and so a (scenario, seed, schedule) triple replays
// bit-for-bit at every GOMAXPROCS setting — the same guarantee sim.Explore
// gives for the synchronous path. Scenario runs produce the same sim.World
// the invariant registry judges, and Compare runs a scenario under both
// executors and reports divergence between the final labelings.
package async

import (
	"context"
	"errors"
	"fmt"
	"time"

	"structura/internal/runtime"
)

// Ticks is virtual time. All delays, timeouts, and windows are integer
// tick counts; integer arithmetic keeps replay exact across platforms.
type Ticks = int64

// Policy selects what happens when a message arrives at a full mailbox.
type Policy int

// Backpressure policies.
const (
	// Block is lossless backpressure: the link holds the message and it is
	// admitted, in arrival order, as the receiver drains its mailbox. The
	// sender's newer sends on the same link queue behind it.
	Block Policy = iota
	// Shed drops the arriving message. No ack is generated, so the
	// sender's retransmission timer recovers it later — retry backoff is
	// the backpressure signal.
	Shed
)

func (p Policy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// DelayKind selects a per-link delay distribution.
type DelayKind int

// Delay distributions. All draws are pure hashes of (seed, from, to, seq,
// attempt), so a delay does not depend on the order events are processed.
const (
	// Fixed delivers every message exactly Base ticks after transmission.
	// The executor degenerates to a barrier-free but synchronous-looking
	// schedule — the control case.
	Fixed DelayKind = iota
	// Uniform adds jitter drawn uniformly from [0, Spread] to Base.
	// Adjacent messages on one link reorder freely.
	Uniform
	// Bimodal delivers most messages at Base plus small jitter, but one in
	// SlowOneIn takes an extra Spread ticks — the heavy-tail "congested
	// queue" case that maximizes reorder distance.
	Bimodal
)

func (k DelayKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Bimodal:
		return "bimodal"
	}
	return "fixed"
}

// Delay is a seeded per-link delay model.
type Delay struct {
	Kind      DelayKind
	Base      Ticks // minimum one-way delay
	Spread    Ticks // uniform: jitter width; bimodal: slow-path penalty
	SlowOneIn int   // bimodal: one in this many messages is slow (default 8)
}

// Draw exposes the pure per-message delay draw to external latency models —
// the partition layer prices a ghost-exchange round over the same link
// distributions the executor uses, so a shard cluster with realistic
// inter-shard latency is just a Delay. Identical inputs yield identical
// delays at any call site.
func (d Delay) Draw(seed uint64, from, to int, seq uint64, attempt int) Ticks {
	return d.draw(seed, from, to, seq, attempt)
}

// draw returns the one-way delay for transmission `attempt` of message
// (from, to, seq). Pure function of its arguments plus the run seed.
func (d Delay) draw(seed uint64, from, to int, seq uint64, attempt int) Ticks {
	base := d.Base
	if base < 1 {
		base = 1
	}
	if d.Kind == Fixed || d.Spread <= 0 {
		return base
	}
	h := splitmix64(seed ^ 0xA5A5A5A5DEADBEEF ^ linkKey(from, to) ^ seq*0x9E3779B97F4A7C15 ^ uint64(attempt)<<48)
	switch d.Kind {
	case Uniform:
		return base + Ticks(h%uint64(d.Spread+1))
	case Bimodal:
		oneIn := d.SlowOneIn
		if oneIn <= 0 {
			oneIn = 8
		}
		jitter := Ticks(h % 3)
		if h>>32%uint64(oneIn) == 0 {
			return base + d.Spread + jitter
		}
		return base + jitter
	}
	return base
}

// Config tunes one executor run. The zero value is usable: seeded at 0,
// uniform delays spanning half a round window, a Block-policy mailbox of 8,
// and the default round budget.
type Config struct {
	Seed uint64

	// Delay is the per-link delivery delay model. Zero value: uniform
	// jitter in [4, 12] ticks.
	Delay Delay

	// RoundTicks is the width of one virtual "round" window — the unit
	// sim.Schedule rounds map onto and the aggregation bucket for
	// Stats.History, making virtual time comparable to synchronous rounds.
	// Default 16.
	RoundTicks Ticks

	// ProcTicks is the receiver-side cost of processing one mailbox
	// message; it is what makes the bounded mailbox fill under bursts.
	// Default 1.
	ProcTicks Ticks

	// MailboxCap bounds each node's mailbox. Default 8.
	MailboxCap int

	// Policy is the full-mailbox behavior: Block (default) or Shed.
	Policy Policy

	// RTO is the initial ack timeout; it doubles per retransmission up to
	// MaxRTO. Defaults: 4 round windows, capped at 64.
	RTO    Ticks
	MaxRTO Ticks

	// MaxRounds bounds the run in virtual round windows. 0 means the
	// sim.Schedule budget discipline: Budget if set, else Horizon + 4n + 8.
	MaxRounds int

	// DetectEvery is the termination-detector probe period. Default
	// RoundTicks. Quiescence is declared at the second consecutive passive
	// probe, so detection lag is between one and two probe periods.
	DetectEvery Ticks

	// Ctx cancels the run between events: the loop stops cleanly, leaving
	// states and statistics consistent as of the last processed event, and
	// Run returns the context's error.
	Ctx context.Context

	// OnApply, when non-nil, observes every applied (non-duplicate)
	// message: instrumentation for tests asserting per-link ordering. It
	// must not call back into the executor.
	OnApply func(from, to int, seq uint64)
}

// ErrConfig reports a Config whose resolved values are unusable.
var ErrConfig = errors.New("async: invalid config")

// Validate resolves the documented zero-value defaults and checks that the
// resolved configuration is internally consistent: strictly positive time
// quantities and mailbox capacity, a non-negative round budget, and an RTO
// window that is neither zero nor inverted (0 < RTO ≤ MaxRTO). The
// defaulting order makes unset-field combinations safe by construction —
// RoundTicks resolves before the windows derived from it (RTO = 4·RoundTicks,
// MaxRTO = 64·RoundTicks, then MaxRTO is floored at RTO) — so Validate
// exists to catch the explicit-value failure modes defaults cannot:
// RoundTicks large enough that a derived window overflows Ticks, or a
// negative MaxRounds. NewExecutor runs this check on every config.
func (c Config) Validate() error {
	r := c.withDefaults()
	switch {
	case r.RoundTicks < 1:
		return fmt.Errorf("%w: RoundTicks %d (want >= 1)", ErrConfig, r.RoundTicks)
	case r.ProcTicks < 1:
		return fmt.Errorf("%w: ProcTicks %d (want >= 1)", ErrConfig, r.ProcTicks)
	case r.MailboxCap < 1:
		return fmt.Errorf("%w: MailboxCap %d (want >= 1)", ErrConfig, r.MailboxCap)
	case r.RTO < 1:
		return fmt.Errorf("%w: RTO %d (want >= 1; derived 4*RoundTicks overflowed?)", ErrConfig, r.RTO)
	case r.MaxRTO < r.RTO:
		return fmt.Errorf("%w: MaxRTO %d < RTO %d (inverted backoff window)", ErrConfig, r.MaxRTO, r.RTO)
	case r.DetectEvery < 1:
		return fmt.Errorf("%w: DetectEvery %d (want >= 1)", ErrConfig, r.DetectEvery)
	case r.MaxRounds < 0:
		return fmt.Errorf("%w: MaxRounds %d (want >= 0)", ErrConfig, r.MaxRounds)
	case r.Delay.Base < 0 || r.Delay.Spread < 0:
		return fmt.Errorf("%w: negative delay (base %d, spread %d)", ErrConfig, r.Delay.Base, r.Delay.Spread)
	}
	return nil
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.RoundTicks <= 0 {
		c.RoundTicks = 16
	}
	if c.ProcTicks <= 0 {
		c.ProcTicks = 1
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 8
	}
	if c.Delay.Base <= 0 && c.Delay.Spread <= 0 {
		c.Delay = Delay{Kind: Uniform, Base: 4, Spread: 8}
	}
	if c.RTO <= 0 {
		c.RTO = 4 * c.RoundTicks
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 64 * c.RoundTicks
	}
	if c.MaxRTO < c.RTO {
		c.MaxRTO = c.RTO
	}
	if c.DetectEvery <= 0 {
		c.DetectEvery = c.RoundTicks
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// Stats quantifies one asynchronous run in both transport and
// virtual-time measures.
type Stats struct {
	// Transport accounting. Sent counts first transmissions, Retries the
	// retransmissions on top; Delivered counts messages applied at a
	// receiver (each exactly once per sequence number); Dups are
	// retransmissions discarded by receiver-side dedup; Shed and Blocked
	// are the two backpressure outcomes at full mailboxes; Lost counts
	// transmissions destroyed in flight (fault loss, removed links,
	// crashed receivers).
	Sent, Retries, Delivered, Acked, Dups, Shed, Blocked, Lost int

	// Changes counts node state changes (the async analogue of the
	// kernel's per-round Changed sum).
	Changes int

	// LastActivity is the virtual time of the last application-level
	// event: the ground-truth quiescence time the detector is judged
	// against.
	LastActivity Ticks

	// DetectedAt is the virtual time the deficit-counting detector
	// declared quiescence; -1 if the run hit its budget first.
	DetectedAt Ticks

	// Quiesced reports a detector-confirmed termination within budget.
	Quiesced bool

	// VRounds is LastActivity expressed in round windows (1-based,
	// rounded up) — the number directly comparable to the synchronous
	// kernel's Stats.Rounds.
	VRounds int

	// History aggregates per round window, in the synchronous kernel's
	// RoundStats vocabulary: Changed is state changes and Messages is
	// applied deliveries inside the window. Rounds-to-restabilize reads
	// off it exactly as for the synchronous path.
	History []runtime.RoundStats

	// Wall is the real time the event loop ran.
	Wall time.Duration
}

// RetryOverhead is the fraction of transmissions that were
// retransmissions: Retries / (Sent + Retries).
func (s Stats) RetryOverhead() float64 {
	total := s.Sent + s.Retries
	if total == 0 {
		return 0
	}
	return float64(s.Retries) / float64(total)
}

// splitmix64 is the SplitMix64 finalizer, the same bijective avalanche mix
// the sim perturber uses for order-independent per-message decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// chance converts a hash to a uniform float in [0,1).
func chance(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// linkKey packs a directed link into a hashable word.
func linkKey(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}
