package async

import (
	"testing"

	"structura/internal/gen"
	"structura/internal/sim"
)

// FuzzLinkFIFO fuzzes the delivery pipeline's ordering contract: whatever
// the delay distribution, loss rate, backpressure policy, or mailbox size,
// the per-link sequence numbers applied at a receiver must be strictly
// increasing — dedup and newest-wins supersede must reconstruct FIFO
// semantics per directed link out of an arbitrarily reordering network.
func FuzzLinkFIFO(f *testing.F) {
	f.Add(uint64(1), float64(0.2), int64(2), int64(9), 1, 8, 2, 4)
	f.Add(uint64(7), float64(0.5), int64(1), int64(30), 2, 4, 1, 2)
	f.Add(uint64(42), float64(0.0), int64(4), int64(0), 0, 16, 0, 1)
	f.Fuzz(func(t *testing.T, seed uint64, loss float64, base, spread int64,
		kind, slowOneIn, policy, mailboxCap int) {
		// Clamp the fuzzed surface to the documented parameter domains; the
		// point is adversarial combinations, not invalid configs.
		if loss < 0 {
			loss = -loss
		}
		for loss >= 0.6 {
			loss /= 2
		}
		if base < 1 {
			base = 1
		}
		if base > 32 {
			base = 32
		}
		if spread < 0 {
			spread = -spread
		}
		if spread > 64 {
			spread = 64
		}
		dk := DelayKind(abs(kind) % 3)
		pol := Policy(abs(policy) % 2)
		cap := abs(mailboxCap)%8 + 1
		slow := abs(slowOneIn)%16 + 2

		const n = 10
		g := gen.Ring(n)
		lastSeq := map[[2]int]uint64{}
		cfg := Config{
			Seed:       seed,
			Delay:      Delay{Kind: dk, Base: base, Spread: spread, SlowOneIn: slow},
			Policy:     pol,
			MailboxCap: cap,
			OnApply: func(from, to int, seq uint64) {
				k := [2]int{from, to}
				if prev, ok := lastSeq[k]; ok && seq <= prev {
					t.Fatalf("link (%d,%d): applied seq %d after %d — FIFO-per-link broken", from, to, seq, prev)
				}
				lastSeq[k] = seq
			},
		}
		x, err := NewExecutor(g, hashInit, maxRule, sim.Schedule{Horizon: 6, MsgLoss: loss}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		states, st, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Whatever the transport did, a quiesced run must sit at the
		// confluent fixpoint.
		if st.Quiesced {
			requireAllEqual(t, states, globalMax(n))
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
