package async

import (
	"math"
	"math/rand/v2"
	"sort"

	"structura/internal/graph"
	"structura/internal/runtime"
	"structura/internal/sim"
)

// Hash salts separating the executor's independent pure-hash decision
// streams (message loss for data vs acks). The PCG salt seeds the fault
// draws, mirroring the discipline of sim.Perturber / sim.FaultStream but on
// an independent stream.
const (
	saltData = 0x51A3B2C4D5E6F701
	saltAck  = 0xAC1D2E3F40516273
	saltPCG  = 0xA24BAED4963EE407
)

// evKind discriminates scheduler events. Within one tick, events execute in
// push order — a total order fixed by the single event loop, which is what
// makes runs bit-identical regardless of GOMAXPROCS.
type evKind uint8

const (
	evRound   evKind = iota // fault-window boundary: apply the round's faults
	evRestart               // crashed node comes back up
	evResume                // paused node runs its deferred step
	evMsg                   // data message arrives at the receiver's link layer
	evAck                   // ack arrives back at the sender
	evRetry                 // retransmission timer fires
	evProc                  // receiver processes its mailbox head
	evProbe                 // termination-detector probe
)

// event is one scheduled occurrence. Field use varies by kind: from/to are
// (sender, receiver) for transport events, `to` is the node for
// evRestart/evResume/evProc, and `from` is the round for evRound.
type event[S any] struct {
	at      Ticks
	order   uint64 // push sequence: total tiebreak within a tick
	kind    evKind
	from    int
	to      int
	mseq    uint64
	attempt int
	payload S
}

// msgItem is a data message queued in a mailbox.
type msgItem[S any] struct {
	from    int
	mseq    uint64
	attempt int
	payload S
}

// outbox tracks the newest message on one directed link. The protocol is
// newest-wins: a fresh state supersedes the unacked previous one (receivers
// only ever need the latest full state), so each link carries at most one
// outstanding message — the per-link deficit the termination detector sums.
type outbox[S any] struct {
	seq      uint64 // last assigned sequence number (0 = never sent)
	acked    bool   // the seq message has been acked (or nothing outstanding)
	attempts int
	rto      Ticks
	deadline Ticks // when the current seq becomes eligible for retransmission
	timer    bool  // an evRetry for this link is queued (at most one at a time)
	payload  S
}

// dropKey addresses one scripted message-drop window: every transmission
// from U to V during round R is destroyed.
type dropKey struct {
	u, v, r int
}

// Executor runs one step function under partial synchrony. Build with
// NewExecutor, drive with Run (one-shot to quiescence) — or incrementally
// via the unexported advance/apply surface the heal adapter uses. An
// Executor is single-run and not safe for concurrent use: determinism comes
// from the one event loop.
type Executor[S any] struct {
	cfg  Config
	seed uint64
	sch  sim.Schedule
	n    int

	init func(int) S
	step func(v int, self S, nbrs []S) (S, bool)

	live *graph.Graph
	csr  *graph.CSR

	// Per-node, CSR-row-aligned link state. sortedNbr/sortedIdx give
	// O(log deg) sender→row lookup without per-message map traffic.
	views     [][]S
	inSeq     [][]uint64
	out       [][]outbox[S]
	sortedNbr [][]int32
	sortedIdx [][]int32
	seqMem    map[uint64]uint64 // linkKey → last seq of a removed link

	// Mailbox and blocked queues drain by head index (reset when empty)
	// instead of shifting, so a long blocked backlog admits in O(1).
	mbox        [][]msgItem[S]
	mboxHead    []int
	blocked     [][]msgItem[S]
	blockedHead []int
	procPending []bool
	downTicks   []Ticks // node is down while now < downTicks[v]
	pauseTicks  []Ticks // node defers its step while now < pauseTicks[v]
	downR       []int   // round-granular crash bookkeeping (draw guards)
	skipR       []int

	state       []S
	changed     []bool
	changedList []int

	// Calendar event queue: a ring of per-tick FIFO buckets for the near
	// window plus an overflow min-heap for the rare event scheduled further
	// than bktSpan ticks out. Pop order is (tick, push order) — identical to
	// a (at, order) min-heap — at O(1) per operation instead of O(log q)
	// sifts over a multi-million-event heap.
	now     Ticks
	bkt     [][]event[S]
	bktHead []int
	cursor  Ticks // all ticks < cursor have empty buckets
	// bktFree recycles drained slot arrays: pop parks each emptied slot's
	// array here and push hands the most recently parked one to the next
	// slot that needs storage. Virtual time is monotone, so a run shorter
	// than bktSpan ticks never revisits a slot — without recycling, every
	// tick of a burst would grow a fresh array and total allocation would
	// track cumulative event volume instead of peak queue depth.
	bktFree [][]event[S]
	ovf     []event[S]
	qLen    int
	pushSeq uint64

	// Detector inputs: pendingWork counts scheduled non-probe events (all
	// potential activity), outstandingLinks is the summed ack deficit, and
	// queued counts mailbox + blocked messages.
	pendingWork      int
	outstandingLinks int
	queued           int
	prevPassive      bool
	prevFP           [4]int
	declared         bool

	rng           *rand.Rand
	byRound       map[int][]sim.Event
	dropWin       map[dropKey]bool
	maxFaultRound int
	horizonTicks  Ticks
	budgetTicks   Ticks
	skipAdds      bool // reversal: record add-edge events but do not apply them

	stats     Stats
	hist      []runtime.RoundStats
	trace     []sim.Event
	lastFault int

	started        bool
	budgetExceeded bool
	eventsSinceCtx int
}

// NewExecutor builds an executor for one run of `step` over g, with node v
// initialized to init(v) and every view initialized to the neighbor's init
// state (the same initial-knowledge convention as the synchronous kernel's
// perturbed path). The schedule's faults are mapped onto virtual time: round
// r spans ticks [(r-1)·RoundTicks, r·RoundTicks).
func NewExecutor[S any](g *graph.Graph, init func(int) S, step func(int, S, []S) (S, bool), sch sim.Schedule, cfg Config) (*Executor[S], error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := g.N()
	x := &Executor[S]{
		cfg:     cfg,
		seed:    cfg.Seed,
		sch:     sch,
		n:       n,
		init:    init,
		step:    step,
		live:    g.Clone(),
		seqMem:  map[uint64]uint64{},
		byRound: map[int][]sim.Event{},
		dropWin: map[dropKey]bool{},
		rng:     rand.New(rand.NewPCG(cfg.Seed, saltPCG)),
	}
	x.state = make([]S, n)
	for v := 0; v < n; v++ {
		x.state[v] = init(v)
	}
	x.mbox = make([][]msgItem[S], n)
	x.mboxHead = make([]int, n)
	x.blocked = make([][]msgItem[S], n)
	x.blockedHead = make([]int, n)
	// Arena-allocate the queue rows: two slabs instead of one growth chain
	// per node. Row capacities cover the steady-state bound (qpop keeps a
	// row's length within 2x its live content, and in-queue coalescing
	// bounds live content by MailboxCap resp. in-degree); a row that still
	// overflows reallocates alone, capped so it cannot bleed into its
	// neighbors' storage.
	mcap := cfg.MailboxCap
	if mcap > 8 {
		mcap = 8
	}
	mcap *= 2
	mboxBuf := make([]msgItem[S], n*mcap)
	qcap := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		x.mbox[v] = mboxBuf[v*mcap : v*mcap : (v+1)*mcap]
		c := 2 * g.Degree(v)
		if c > 16 {
			c = 16
		}
		qcap[v] = c
		total += c
	}
	blockedBuf := make([]msgItem[S], total)
	off := 0
	for v := 0; v < n; v++ {
		x.blocked[v] = blockedBuf[off : off : off+qcap[v]]
		off += qcap[v]
	}
	x.procPending = make([]bool, n)
	x.downTicks = make([]Ticks, n)
	x.pauseTicks = make([]Ticks, n)
	x.downR = make([]int, n)
	x.skipR = make([]int, n)
	x.changed = make([]bool, n)
	x.bkt = make([][]event[S], bktSpan)
	x.bktHead = make([]int, bktSpan)
	for v := 0; v < n; v++ {
		x.downR[v], x.skipR[v] = -1, -1
	}
	for _, e := range sch.Events {
		x.byRound[e.Round] = append(x.byRound[e.Round], e)
	}
	x.maxFaultRound = sch.Horizon
	for _, e := range sch.Events {
		if e.Round > x.maxFaultRound {
			x.maxFaultRound = e.Round
		}
		if e.Op == sim.OpCrash || e.Op == sim.OpSkip {
			if end := e.Round + e.For; end > x.maxFaultRound {
				x.maxFaultRound = end
			}
		}
	}
	x.horizonTicks = Ticks(sch.Horizon) * cfg.RoundTicks
	budgetRounds := cfg.MaxRounds
	if budgetRounds <= 0 {
		budgetRounds = sch.Budget
		if budgetRounds <= 0 {
			budgetRounds = sch.Horizon + 4*n + 8
		}
	}
	if budgetRounds < x.maxFaultRound+8 {
		budgetRounds = x.maxFaultRound + 8
	}
	x.budgetTicks = Ticks(budgetRounds) * cfg.RoundTicks
	x.stats.DetectedAt = -1
	x.refreeze()
	return x, nil
}

// Live returns the current (churned) support topology. Read-only to
// callers; all mutation goes through fault events.
func (x *Executor[S]) Live() *graph.Graph { return x.live }

// States returns a copy of the current node states.
func (x *Executor[S]) States() []S { return append([]S(nil), x.state...) }

// Now returns the current virtual time.
func (x *Executor[S]) Now() Ticks { return x.now }

// Trace returns the concrete fault events applied so far, like
// sim.Perturber.Trace.
func (x *Executor[S]) Trace() []sim.Event { return append([]sim.Event(nil), x.trace...) }

// LastFaultRound returns the last round window in which a fault applied.
func (x *Executor[S]) LastFaultRound() int { return x.lastFault }

// Run drives the executor to detector-declared quiescence, budget
// exhaustion, or context cancellation, and returns the final states with
// the run's statistics. Cancellation is clean: the loop stops between
// events, so states and statistics are consistent as of the last event.
func (x *Executor[S]) Run() ([]S, Stats, error) {
	t0 := timeNow()
	x.start()
	err := x.loop(math.MaxInt64, true)
	x.finalize()
	x.stats.Wall = timeSince(t0)
	return x.States(), x.stats, err
}

// window maps a tick to its 1-based round window.
func (x *Executor[S]) window(t Ticks) int { return int(t/x.cfg.RoundTicks) + 1 }

func (x *Executor[S]) isDown(v int) bool   { return x.now < x.downTicks[v] }
func (x *Executor[S]) isPaused(v int) bool { return x.now < x.pauseTicks[v] }

// passive reports implementation-level quiescence: nothing scheduled,
// nothing queued, zero ack deficit. Equivalent to (and cheaper than) the
// distributed deficit sum — see quiesce.go for the detector protocol that
// confirms it.
func (x *Executor[S]) passive() bool {
	return x.pendingWork == 0 && x.outstandingLinks == 0 && x.queued == 0
}

// ---- event queue -------------------------------------------------------

// bktSpan is the calendar ring width in ticks. Everything the protocol
// schedules is much nearer than this (delays are a few ticks, MaxRTO
// defaults to 64 round windows = 1024 ticks); a pathological schedule — a
// crash with a multi-hundred-window downtime — lands in the overflow heap
// and is admitted to the ring as the cursor approaches.
const (
	bktSpan = 1 << 12
	bktMask = bktSpan - 1
)

func evLess[S any](a, b event[S]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.order < b.order
}

func (x *Executor[S]) push(e event[S]) {
	e.order = x.pushSeq
	x.pushSeq++
	if e.kind != evProbe {
		x.pendingWork++
	}
	x.qLen++
	if e.at < x.cursor {
		e.at = x.cursor // defensive: the protocol never schedules into the past
	}
	if e.at-x.cursor < bktSpan {
		x.slotAppend(int(e.at&bktMask), e)
		return
	}
	x.ovfPush(e)
}

// slotAppend adds e to ring slot i, seeding an empty slot with the largest
// recycled array first. The free list is capacity-sorted and acquisition
// takes from the top, so a hot tick — the initial activation wave, a
// synchronized retry deadline — inherits the biggest drained array instead
// of regrowing a quiet tick's two-element one; a quiet tick that borrows a
// big array merely returns it untouched one tick later. Growth therefore
// happens only while peak demand is still being discovered, and total
// allocation tracks peak queue depth rather than cumulative event volume.
func (x *Executor[S]) slotAppend(i int, e event[S]) {
	if cap(x.bkt[i]) == 0 {
		if n := len(x.bktFree); n > 0 {
			x.bkt[i] = x.bktFree[n-1]
			x.bktFree[n-1] = nil
			x.bktFree = x.bktFree[:n-1]
		}
	}
	if len(x.bkt[i]) == cap(x.bkt[i]) {
		// Grow by doubling rather than append's ~1.25x large-slice factor:
		// a slot ramping to H costs 2H across its growth chain instead of
		// 5H, and hot slots are the repo's biggest single allocation site.
		newCap := 2 * cap(x.bkt[i])
		if newCap < 64 {
			newCap = 64
		}
		nb := make([]event[S], len(x.bkt[i]), newCap)
		copy(nb, x.bkt[i])
		x.bkt[i] = nb
	}
	x.bkt[i] = append(x.bkt[i], e)
}

// parkSlot returns a drained slot array to the capacity-sorted free list.
func (x *Executor[S]) parkSlot(arr []event[S]) {
	c := cap(arr)
	k := sort.Search(len(x.bktFree), func(j int) bool { return cap(x.bktFree[j]) > c })
	x.bktFree = append(x.bktFree, nil)
	copy(x.bktFree[k+1:], x.bktFree[k:])
	x.bktFree[k] = arr[:0]
}

// peekAt returns the virtual time of the next queued event without
// consuming it, or math.MaxInt64 when the queue is empty.
func (x *Executor[S]) peekAt() Ticks {
	if x.qLen == 0 {
		return math.MaxInt64
	}
	best := Ticks(math.MaxInt64)
	if len(x.ovf) > 0 {
		best = x.ovf[0].at
	}
	end := x.cursor + bktSpan
	if best < end {
		end = best
	}
	for t := x.cursor; t < end; t++ {
		if i := int(t & bktMask); x.bktHead[i] < len(x.bkt[i]) {
			return t
		}
	}
	return best
}

func (x *Executor[S]) pop() event[S] {
	at := x.peekAt()
	// Advance the cursor, parking each emptied bucket's array on the free
	// stack so a later tick reuses its capacity.
	steps := at - x.cursor
	if steps > bktSpan {
		steps = bktSpan
	}
	for s := Ticks(0); s < steps; s++ {
		i := int((x.cursor + s) & bktMask)
		if cap(x.bkt[i]) > 0 {
			x.parkSlot(x.bkt[i])
			x.bkt[i] = nil
		}
		x.bktHead[i] = 0
	}
	x.cursor = at
	// Admit overflow events that now fall inside the ring window, in
	// (time, order) sequence.
	for len(x.ovf) > 0 && x.ovf[0].at-x.cursor < bktSpan {
		o := x.ovfPop()
		x.slotAppend(int(o.at&bktMask), o)
	}
	i := int(at & bktMask)
	e := x.bkt[i][x.bktHead[i]]
	x.bktHead[i]++
	x.qLen--
	if e.kind != evProbe {
		x.pendingWork--
	}
	return e
}

func (x *Executor[S]) ovfPush(e event[S]) {
	x.ovf = append(x.ovf, e)
	i := len(x.ovf) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(x.ovf[i], x.ovf[p]) {
			break
		}
		x.ovf[i], x.ovf[p] = x.ovf[p], x.ovf[i]
		i = p
	}
}

func (x *Executor[S]) ovfPop() event[S] {
	top := x.ovf[0]
	last := len(x.ovf) - 1
	x.ovf[0] = x.ovf[last]
	x.ovf = x.ovf[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && evLess(x.ovf[l], x.ovf[min]) {
			min = l
		}
		if r < last && evLess(x.ovf[r], x.ovf[min]) {
			min = r
		}
		if min == i {
			break
		}
		x.ovf[i], x.ovf[min] = x.ovf[min], x.ovf[i]
		i = min
	}
	return top
}

// ---- topology ----------------------------------------------------------

// rowIndex finds the CSR row position of neighbor w within v's row via
// binary search over the sorted shadow arrays.
func (x *Executor[S]) rowIndex(v, w int) (int, bool) {
	nbrs := x.sortedNbr[v]
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid] < int32(w) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo] == int32(w) {
		return int(x.sortedIdx[v][lo]), true
	}
	return 0, false
}

// refreeze rebuilds the CSR snapshot and every row-aligned array after a
// topology change, carrying link state over surviving links. New links get
// the handshake convention of runtime's remapSeen: the view initializes to
// the neighbor's current state. Sequence counters of removed links persist
// in seqMem so a re-added link resumes its numbering — and a re-added
// link's inSeq starts at the peer's outbox counter, which makes any still
// in-flight pre-removal message a stale duplicate instead of a view
// regression.
func (x *Executor[S]) refreeze() {
	oldCSR := x.csr
	oldViews, oldIn, oldOut := x.views, x.inSeq, x.out
	oldSortedNbr, oldSortedIdx := x.sortedNbr, x.sortedIdx
	oldRow := func(v, w int) (int, bool) {
		nbrs := oldSortedNbr[v]
		i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(w) })
		if i < len(nbrs) && nbrs[i] == int32(w) {
			return int(oldSortedIdx[v][i]), true
		}
		return 0, false
	}

	x.csr = x.live.Freeze()
	n := x.n
	total := 0
	for v := 0; v < n; v++ {
		total += x.csr.Degree(v)
	}
	viewsBuf := make([]S, total)
	inBuf := make([]uint64, total)
	outBuf := make([]outbox[S], total)
	nbrBuf := make([]int32, total)
	idxBuf := make([]int32, total)
	x.views = make([][]S, n)
	x.inSeq = make([][]uint64, n)
	x.out = make([][]outbox[S], n)
	x.sortedNbr = make([][]int32, n)
	x.sortedIdx = make([][]int32, n)

	// Release the counters of links that disappeared before rebuilding, so
	// the ack deficit stays exact.
	if oldCSR != nil {
		for v := 0; v < n; v++ {
			for j, w32 := range oldCSR.Neighbors(v) {
				w := int(w32)
				if x.live.HasEdge(v, w) {
					continue
				}
				x.seqMem[linkKey(v, w)] = oldOut[v][j].seq
				if !oldOut[v][j].acked {
					x.outstandingLinks--
				}
			}
		}
	}

	off := 0
	for v := 0; v < n; v++ {
		row := x.csr.Neighbors(v)
		deg := len(row)
		x.views[v] = viewsBuf[off : off+deg : off+deg]
		x.inSeq[v] = inBuf[off : off+deg : off+deg]
		x.out[v] = outBuf[off : off+deg : off+deg]
		x.sortedNbr[v] = nbrBuf[off : off+deg : off+deg]
		x.sortedIdx[v] = idxBuf[off : off+deg : off+deg]
		off += deg
		for i, w32 := range row {
			w := int(w32)
			x.sortedNbr[v][i] = w32
			x.sortedIdx[v][i] = int32(i)
			if oldCSR != nil {
				if j, ok := oldRow(v, w); ok {
					x.views[v][i] = oldViews[v][j]
					x.inSeq[v][i] = oldIn[v][j]
					x.out[v][i] = oldOut[v][j]
					continue
				}
			}
			// New (or initial) link: handshake view, restored counters.
			x.views[v][i] = x.state[w]
			x.out[v][i] = outbox[S]{seq: x.seqMem[linkKey(v, w)], acked: true}
			x.inSeq[v][i] = x.seqMem[linkKey(w, v)]
		}
		// Sort the shadow row by neighbor id for rowIndex lookups. An
		// allocation-free insertion co-sort: rows are short (node degree)
		// and usually nearly sorted already, and sort.Sort's interface
		// indirection would cost one heap allocation per node per
		// refreeze.
		sn, si := x.sortedNbr[v], x.sortedIdx[v]
		for i := 1; i < len(sn); i++ {
			nb, ix := sn[i], si[i]
			j := i - 1
			for ; j >= 0 && sn[j] > nb; j-- {
				sn[j+1], si[j+1] = sn[j], si[j]
			}
			sn[j+1], si[j+1] = nb, ix
		}
	}
}

// ---- accounting --------------------------------------------------------

// histAt returns the History bucket for the window containing t, creating
// it on demand (windows with no activity leave no bucket, matching the
// sparse read recoveryRounds performs).
func (x *Executor[S]) histAt(t Ticks) *runtime.RoundStats {
	r := x.window(t)
	if ln := len(x.hist); ln > 0 && x.hist[ln-1].Round == r {
		return &x.hist[ln-1]
	}
	x.hist = append(x.hist, runtime.RoundStats{Round: r})
	return &x.hist[len(x.hist)-1]
}

func (x *Executor[S]) noteFault(round int) {
	if round > x.lastFault {
		x.lastFault = round
	}
}

func (x *Executor[S]) markChanged(v int) {
	if !x.changed[v] {
		x.changed[v] = true
		x.changedList = append(x.changedList, v)
	}
}

// resetChanged clears the changed-node tracker and returns the previous
// set, sorted.
func (x *Executor[S]) resetChanged() []int {
	out := append([]int(nil), x.changedList...)
	sort.Ints(out)
	for _, v := range x.changedList {
		x.changed[v] = false
	}
	x.changedList = x.changedList[:0]
	return out
}

// ---- protocol ----------------------------------------------------------

// lost decides whether a transmission starting at sendAt is destroyed in
// flight: scripted drop windows destroy data messages outright, and within
// the adversary horizon every transmission (data and ack) faces the
// schedule's MsgLoss probability via a pure hash — varying per attempt, so
// retransmissions eventually get through.
func (x *Executor[S]) lost(sendAt Ticks, from, to int, seq uint64, attempt int, salt uint64) bool {
	r := x.window(sendAt)
	if salt == saltData && x.dropWin[dropKey{from, to, r}] {
		return true
	}
	if sendAt >= x.horizonTicks || x.sch.MsgLoss <= 0 {
		return false
	}
	h := splitmix64(x.seed ^ salt ^ linkKey(from, to) ^
		seq*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xD1B54A32D192ED03 ^ uint64(r)*0x94D049BB133111EB)
	return chance(h) < x.sch.MsgLoss
}

// transmit puts one copy of message (v→w, seq) on the wire.
func (x *Executor[S]) transmit(v, w int, payload S, seq uint64, attempt int) {
	if attempt == 0 {
		x.stats.Sent++
	} else {
		x.stats.Retries++
	}
	if x.lost(x.now, v, w, seq, attempt, saltData) {
		x.stats.Lost++
		x.noteFault(x.window(x.now))
		return
	}
	d := x.cfg.Delay.draw(x.seed, v, w, seq, attempt)
	x.push(event[S]{at: x.now + d, kind: evMsg, from: v, to: w, mseq: seq, attempt: attempt, payload: payload})
}

// send assigns the next sequence number on link (v → row i = node w),
// superseding any unacked predecessor, transmits, and arms the RTO timer.
func (x *Executor[S]) send(v, i, w int) {
	ob := &x.out[v][i]
	if ob.acked {
		x.outstandingLinks++
	}
	ob.seq++
	ob.acked = false
	ob.payload = x.state[v]
	ob.attempts = 0
	ob.rto = x.cfg.RTO
	ob.deadline = x.now + ob.rto + x.retryJitter(v, w, ob.seq, 0)
	x.transmit(v, w, ob.payload, ob.seq, 0)
	// One timer per link, not per send: a burst of superseding sends shares
	// the queued evRetry, which re-arms itself against the live deadline.
	if !ob.timer {
		ob.timer = true
		x.push(event[S]{at: ob.deadline, kind: evRetry, from: v, to: w})
	}
}

// broadcast sends v's current state on every incident link.
func (x *Executor[S]) broadcast(v int) {
	for i, w := range x.csr.Neighbors(v) {
		x.send(v, i, int(w))
	}
}

func (x *Executor[S]) sendAck(w, u int, seq uint64, attempt int) {
	if x.lost(x.now, w, u, seq, attempt, saltAck) {
		x.stats.Lost++
		x.noteFault(x.window(x.now))
		return
	}
	d := x.cfg.Delay.draw(x.seed, w, u, seq, attempt)
	x.push(event[S]{at: x.now + d, kind: evAck, from: w, to: u, mseq: seq})
}

// stepNode runs the step function at v against its current views, exactly
// like one kernel round at one node; a reported change broadcasts the new
// state. Down nodes cannot step; paused nodes defer to their evResume.
func (x *Executor[S]) stepNode(v int) {
	if x.isDown(v) || x.isPaused(v) {
		return
	}
	s, ch := x.step(v, x.state[v], x.views[v])
	x.state[v] = s
	if !ch {
		return
	}
	x.stats.Changes++
	x.markChanged(v)
	x.histAt(x.now).Changed++
	x.stats.LastActivity = x.now
	x.broadcast(v)
}

func (x *Executor[S]) scheduleProc(w int) {
	if x.procPending[w] || x.isDown(w) {
		return
	}
	x.procPending[w] = true
	x.push(event[S]{at: x.now + x.cfg.ProcTicks, kind: evProc, to: w})
}

// ---- dispatch ----------------------------------------------------------

func (x *Executor[S]) dispatch(e event[S]) {
	switch e.kind {
	case evRound:
		x.applyRound(e.from)
	case evRestart:
		x.handleRestart(e)
	case evResume:
		if x.pauseTicks[e.to] == e.at {
			x.stepNode(e.to)
		}
	case evMsg:
		x.handleMsg(e)
	case evAck:
		x.handleAck(e)
	case evRetry:
		x.handleRetry(e)
	case evProc:
		x.handleProc(e)
	case evProbe:
		x.handleProbe()
	}
}

func (x *Executor[S]) handleMsg(e event[S]) {
	w := e.to
	if !x.live.HasEdge(e.from, w) || x.isDown(w) {
		x.stats.Lost++
		return
	}
	m := msgItem[S]{from: e.from, mseq: e.mseq, attempt: e.attempt, payload: e.payload}
	// Newest-wins extends into the queues: each in-link occupies at most
	// one undrained slot, so a burst of superseding sends (or a
	// retransmission racing its original) coalesces into one pending
	// application instead of growing the backlog — the receiver applies
	// the newest state once, which is all the protocol ever promises. A
	// stale straggler dies here instead of costing a mailbox pass.
	for j := x.mboxHead[w]; j < len(x.mbox[w]); j++ {
		if x.mbox[w][j].from == m.from {
			if m.mseq >= x.mbox[w][j].mseq {
				x.mbox[w][j] = m
			} else {
				x.stats.Dups++
			}
			return
		}
	}
	for j := x.blockedHead[w]; j < len(x.blocked[w]); j++ {
		if x.blocked[w][j].from == m.from {
			if m.mseq >= x.blocked[w][j].mseq {
				x.blocked[w][j] = m
			} else {
				x.stats.Dups++
			}
			return
		}
	}
	switch {
	case x.mboxLen(w) < x.cfg.MailboxCap:
		x.mbox[w] = append(x.mbox[w], m)
		x.queued++
		x.scheduleProc(w)
	case x.cfg.Policy == Shed:
		// No ack: the sender's backoff timer is the backpressure signal.
		x.stats.Shed++
	default:
		// Block: the link holds the message until the mailbox drains.
		x.blocked[w] = append(x.blocked[w], m)
		x.queued++
		x.stats.Blocked++
	}
}

// mboxLen and blockedLen are the live (undrained) queue lengths.
func (x *Executor[S]) mboxLen(w int) int    { return len(x.mbox[w]) - x.mboxHead[w] }
func (x *Executor[S]) blockedLen(w int) int { return len(x.blocked[w]) - x.blockedHead[w] }

// qpop removes and returns the head of a head-indexed FIFO queue,
// compacting the backing slice when the dead prefix dominates.
func qpop[S any](q *[]msgItem[S], head *int) msgItem[S] {
	m := (*q)[*head]
	*head++
	switch {
	case *head == len(*q):
		*q = (*q)[:0]
		*head = 0
	case *head >= 8 && *head*2 >= len(*q):
		n := copy(*q, (*q)[*head:])
		*q = (*q)[:n]
		*head = 0
	}
	return m
}

func (x *Executor[S]) handleProc(e event[S]) {
	w := e.to
	x.procPending[w] = false
	if x.isDown(w) || x.mboxLen(w) == 0 {
		return
	}
	m := qpop(&x.mbox[w], &x.mboxHead[w])
	x.queued--
	if x.blockedLen(w) > 0 && x.mboxLen(w) < x.cfg.MailboxCap {
		x.mbox[w] = append(x.mbox[w], qpop(&x.blocked[w], &x.blockedHead[w]))
	}
	if x.mboxLen(w) > 0 {
		x.scheduleProc(w)
	}
	i, ok := x.rowIndex(w, m.from)
	if !ok {
		// The link vanished while the message sat queued.
		x.stats.Lost++
		return
	}
	if m.mseq <= x.inSeq[w][i] {
		// Duplicate or out-of-order stale copy: re-ack, never re-apply.
		// This is the FIFO-per-link guarantee — an older state cannot
		// overwrite a newer view, whatever the network reordered. The
		// re-ack is cumulative: it names the newest applied sequence, so
		// a sender whose fresher ack was lost clears its deficit off this
		// stale round trip instead of paying another RTO.
		x.stats.Dups++
		x.sendAck(w, m.from, x.inSeq[w][i], m.attempt)
		return
	}
	x.inSeq[w][i] = m.mseq
	x.views[w][i] = m.payload
	x.stats.Delivered++
	x.histAt(x.now).Messages++
	x.stats.LastActivity = x.now
	if x.cfg.OnApply != nil {
		x.cfg.OnApply(m.from, w, m.mseq)
	}
	x.sendAck(w, m.from, m.mseq, m.attempt)
	x.stepNode(w)
}

func (x *Executor[S]) handleAck(e event[S]) {
	i, ok := x.rowIndex(e.to, e.from)
	if !ok {
		return
	}
	ob := &x.out[e.to][i]
	// Acks are cumulative per link: seq k acknowledges every sequence up
	// to k, so any ack at or beyond the outstanding (newest) sequence
	// clears the deficit. Receivers never ack beyond what the sender
	// assigned, so >= only fires for the newest-applied re-acks.
	if !ob.acked && e.mseq >= ob.seq {
		ob.acked = true
		x.outstandingLinks--
		x.stats.Acked++
	}
}

// handleRetry services the link's single retransmission timer: disarm, and
// if the newest message is still unacked either retransmit with doubled
// backoff (deadline reached) or sleep until the deadline a fresher send
// installed.
func (x *Executor[S]) handleRetry(e event[S]) {
	i, ok := x.rowIndex(e.from, e.to)
	if !ok {
		return // link removed; outstanding already cancelled
	}
	ob := &x.out[e.from][i]
	ob.timer = false
	if ob.acked {
		return
	}
	if x.now < ob.deadline {
		ob.timer = true
		x.push(event[S]{at: ob.deadline, kind: evRetry, from: e.from, to: e.to})
		return
	}
	ob.attempts++
	x.transmit(e.from, e.to, ob.payload, ob.seq, ob.attempts)
	ob.rto *= 2
	if ob.rto > x.cfg.MaxRTO {
		ob.rto = x.cfg.MaxRTO
	}
	ob.deadline = x.now + ob.rto + x.retryJitter(e.from, e.to, ob.seq, ob.attempts)
	ob.timer = true
	x.push(event[S]{at: ob.deadline, kind: evRetry, from: e.from, to: e.to})
}

// retryJitter spreads a link's retransmission deadline uniformly over half
// an extra backoff window. A synchronized burst — every node's first
// broadcast, a fault window's worth of losses — would otherwise arm every
// timer in the same tick and land them all on the same slot RTO ticks
// later, a thundering-herd retry storm that is also the single largest
// event-queue hot spot. The draw is a pure hash of (seed, link, seq,
// attempt), so replay determinism is untouched, and it is additive, so a
// retransmission never fires before its full backoff elapsed.
func (x *Executor[S]) retryJitter(v, w int, seq uint64, attempt int) Ticks {
	rto := x.cfg.RTO
	if rto < 4 {
		return 0
	}
	h := splitmix64(x.seed ^ 0x517CC1B727220A95 ^ linkKey(v, w) ^ seq*0x9E3779B97F4A7C15 ^ uint64(attempt)<<40)
	return Ticks(h % uint64(rto/2+1))
}

// handleRestart brings a crashed node back: restart with amnesia (state
// reset to init, like the synchronous Restart perturbation), visible to the
// neighborhood via an unconditional broadcast, then one step against the
// preserved views.
func (x *Executor[S]) handleRestart(e event[S]) {
	v := e.to
	if x.downTicks[v] != e.at {
		return // superseded by a later crash
	}
	x.state[v] = x.init(v)
	x.stats.Changes++
	x.markChanged(v)
	x.histAt(x.now).Changed++
	x.stats.LastActivity = x.now
	x.noteFault(x.window(x.now))
	x.broadcast(v)
	x.stepNode(v)
}

// ---- faults ------------------------------------------------------------

// applyRound materializes round r of the schedule at its window boundary:
// scripted events first, then the probabilistic churn → crash → skew draws
// in the same fixed order as sim.Perturber (on an independent PCG stream).
func (x *Executor[S]) applyRound(r int) {
	topoChanged := false
	var dirty []int
	seen := map[int]bool{}
	addDirty := func(vs ...int) {
		for _, v := range vs {
			if v >= 0 && v < x.n && !seen[v] {
				seen[v] = true
				dirty = append(dirty, v)
			}
		}
	}
	apply := func(e sim.Event) {
		switch e.Op {
		case sim.OpAddEdge:
			if x.skipAdds {
				// Mirror the reversal scenarios: additions are recorded
				// (the variants have no link-addition rule) but not applied.
				x.trace = append(x.trace, sim.Event{Round: r, Op: e.Op, U: e.U, V: e.V})
				return
			}
			if e.U == e.V || x.live.HasEdge(e.U, e.V) {
				return
			}
			if x.live.AddEdge(e.U, e.V) != nil {
				return
			}
			topoChanged = true
			addDirty(e.U, e.V)
		case sim.OpRemoveEdge:
			if !x.live.RemoveEdge(e.U, e.V) {
				return
			}
			topoChanged = true
			addDirty(e.U, e.V)
		case sim.OpCrash:
			if e.U < 0 || e.U >= x.n {
				return
			}
			d := e.For
			if d <= 0 {
				d = 1
			}
			x.crash(e.U, r, d)
		case sim.OpSkip:
			if e.U < 0 || e.U >= x.n {
				return
			}
			d := e.For
			if d <= 0 {
				d = 1
			}
			x.pause(e.U, r, d)
		case sim.OpDrop:
			x.dropWin[dropKey{e.U, e.V, r}] = true
		default:
			return
		}
		x.noteFault(r)
		x.trace = append(x.trace, sim.Event{Round: r, Op: e.Op, U: e.U, V: e.V, For: e.For})
	}

	for _, e := range x.byRound[r] {
		apply(e)
	}
	if r <= x.sch.Horizon {
		every := x.sch.ChurnEvery
		if every <= 0 {
			every = 1
		}
		if (x.sch.ChurnRemove > 0 || x.sch.ChurnAdd > 0) && r%every == 0 {
			for i := 0; i < x.sch.ChurnRemove; i++ {
				edges := x.live.Edges()
				if len(edges) == 0 {
					break
				}
				e := edges[x.rng.IntN(len(edges))]
				apply(sim.Event{Op: sim.OpRemoveEdge, U: e.From, V: e.To})
			}
			for i := 0; i < x.sch.ChurnAdd; i++ {
				for try := 0; try < 16; try++ {
					u, v := x.rng.IntN(x.n), x.rng.IntN(x.n)
					if u == v || x.live.HasEdge(u, v) {
						continue
					}
					apply(sim.Event{Op: sim.OpAddEdge, U: u, V: v})
					break
				}
			}
		}
		if x.sch.CrashProb > 0 {
			down := x.sch.Downtime
			if down <= 0 {
				down = 1
			}
			for v := 0; v < x.n; v++ {
				if x.downR[v] >= r {
					continue
				}
				if x.rng.Float64() < x.sch.CrashProb {
					apply(sim.Event{Op: sim.OpCrash, U: v, For: down})
				}
			}
		}
		if x.sch.SkewProb > 0 {
			maxSkew := x.sch.MaxSkew
			if maxSkew <= 0 {
				maxSkew = 1
			}
			for v := 0; v < x.n; v++ {
				if x.downR[v] >= r || x.skipR[v] >= r {
					continue
				}
				if x.rng.Float64() < x.sch.SkewProb {
					apply(sim.Event{Op: sim.OpSkip, U: v, For: 1 + x.rng.IntN(maxSkew)})
				}
			}
		}
	}
	if topoChanged {
		x.refreeze()
	}
	if r+1 <= x.maxFaultRound {
		x.push(event[S]{at: Ticks(r) * x.cfg.RoundTicks, kind: evRound, from: r + 1})
	}
	for _, v := range dirty {
		x.stepNode(v)
	}
}

// crash takes v down for d round windows starting at round r: its mailbox
// and unacked sends are lost (retransmission by live peers restores
// at-least-once end to end), arrivals during downtime are destroyed, and an
// evRestart resets it to its init state.
func (x *Executor[S]) crash(v, r, d int) {
	x.downR[v] = r + d - 1
	x.downTicks[v] = Ticks(r-1+d) * x.cfg.RoundTicks
	lost := x.mboxLen(v) + x.blockedLen(v)
	x.stats.Lost += lost
	x.queued -= lost
	x.mbox[v] = x.mbox[v][:0]
	x.mboxHead[v] = 0
	x.blocked[v] = x.blocked[v][:0]
	x.blockedHead[v] = 0
	for i := range x.out[v] {
		if !x.out[v][i].acked {
			x.out[v][i].acked = true
			x.outstandingLinks--
		}
	}
	x.push(event[S]{at: x.downTicks[v], kind: evRestart, to: v})
}

// pause suspends v's step (not its message processing — views keep
// updating, exactly like the synchronous Inactive perturbation) for d round
// windows; the deferred step runs at resume.
func (x *Executor[S]) pause(v, r, d int) {
	x.skipR[v] = r + d - 1
	x.pauseTicks[v] = Ticks(r-1+d) * x.cfg.RoundTicks
	x.push(event[S]{at: x.pauseTicks[v], kind: evResume, to: v})
}

// applyEventNow injects one fault event at the current virtual time — the
// path external fault drivers (the heal Supervisor) use. Edge events
// refreeze and activate their endpoints immediately.
func (x *Executor[S]) applyEventNow(e sim.Event) (dirty []int, applied bool) {
	r := x.window(x.now)
	switch e.Op {
	case sim.OpAddEdge:
		if e.U == e.V || x.live.HasEdge(e.U, e.V) || x.live.AddEdge(e.U, e.V) != nil {
			return nil, false
		}
		dirty = []int{e.U, e.V}
		x.refreeze()
	case sim.OpRemoveEdge:
		if !x.live.RemoveEdge(e.U, e.V) {
			return nil, false
		}
		dirty = []int{e.U, e.V}
		x.refreeze()
	case sim.OpCrash:
		if e.U < 0 || e.U >= x.n {
			return nil, false
		}
		d := e.For
		if d <= 0 {
			d = 1
		}
		x.crash(e.U, r, d)
		dirty = []int{e.U}
	case sim.OpSkip:
		if e.U < 0 || e.U >= x.n {
			return nil, false
		}
		d := e.For
		if d <= 0 {
			d = 1
		}
		x.pause(e.U, r, d)
		dirty = []int{e.U}
	case sim.OpDrop:
		x.dropWin[dropKey{e.U, e.V, r}] = true
	default:
		return nil, false
	}
	x.noteFault(r)
	x.reopen()
	x.trace = append(x.trace, sim.Event{Round: r, Op: e.Op, U: e.U, V: e.V, For: e.For})
	for _, v := range dirty {
		x.stepNode(v)
	}
	return dirty, true
}

// patch force-sets v's state (a repair primitive): the change is broadcast
// unconditionally so the neighborhood observes it. The patched node does not
// step by itself — pair with refresh when it should re-derive its label.
func (x *Executor[S]) patch(v int, s S) {
	x.reopen()
	x.state[v] = s
	x.stats.Changes++
	x.markChanged(v)
	x.histAt(x.now).Changed++
	x.stats.LastActivity = x.now
	x.broadcast(v)
}

// refresh asks every live neighbor of v to re-announce its current state on
// its link toward v — the pull a repair controller performs so a poisoned
// node re-derives its label from fresh data: each arriving re-announcement
// updates a view and triggers v's step. Without it a patched node whose
// neighbors have nothing new to say would keep the patched value forever.
func (x *Executor[S]) refresh(v int) {
	x.reopen()
	x.live.EachNeighbor(v, func(w int, _ float64) {
		if i, ok := x.rowIndex(w, v); ok && !x.isDown(w) {
			x.send(w, i, v)
		}
	})
}

// ---- run loop ----------------------------------------------------------

// start performs the one-time prologue: round-1 faults (so a round-1 crash
// precedes the initial steps, as in the synchronous kernel), the initial
// activation of every node against its init views, and the first detector
// probe.
func (x *Executor[S]) start() {
	if x.started {
		return
	}
	x.started = true
	if x.maxFaultRound >= 1 {
		x.applyRound(1)
	}
	for v := 0; v < x.n; v++ {
		x.stepNode(v)
	}
	x.push(event[S]{at: x.cfg.DetectEvery, kind: evProbe})
}

// loop processes events in virtual-time order up to `limit`. With
// stopOnQuiesce it also stops at budget exhaustion or when the detector
// declares; without it (the incremental mode the heal adapter drives) the
// budget is the caller's problem and probes keep cycling.
func (x *Executor[S]) loop(limit Ticks, stopOnQuiesce bool) error {
	for x.qLen > 0 {
		at := x.peekAt()
		if at > limit {
			break
		}
		if stopOnQuiesce && at > x.budgetTicks {
			x.budgetExceeded = true
			x.now = x.budgetTicks
			return nil
		}
		x.eventsSinceCtx++
		if x.eventsSinceCtx >= 512 {
			x.eventsSinceCtx = 0
			if err := x.cfg.Ctx.Err(); err != nil {
				return err
			}
		}
		e := x.pop()
		x.now = e.at
		x.dispatch(e)
		if stopOnQuiesce && x.declared {
			return nil
		}
	}
	if limit < math.MaxInt64 && x.now < limit {
		x.now = limit
	}
	return x.cfg.Ctx.Err()
}

// advanceTo drives the loop through every event at or before `limit` and
// leaves virtual time there.
func (x *Executor[S]) advanceTo(limit Ticks) error {
	x.start()
	return x.loop(limit, false)
}

// settle advances window by window until the system is passive, up to
// maxWindows (≤ 0 means the default 4n+8). Returns the windows consumed and
// whether passivity was reached.
func (x *Executor[S]) settle(maxWindows int) (int, bool) {
	x.start() // a fresh executor is vacuously passive until the initial activation
	if maxWindows <= 0 {
		maxWindows = 4*x.n + 8
	}
	for w := 0; w < maxWindows; w++ {
		if x.passive() {
			return w, true
		}
		if err := x.advanceTo(x.now + x.cfg.RoundTicks); err != nil {
			return w, false
		}
	}
	return maxWindows, x.passive()
}

// finalize freezes the run statistics after the loop ends.
func (x *Executor[S]) finalize() {
	x.stats.VRounds = x.window(x.stats.LastActivity)
	x.stats.History = x.hist
	if !x.stats.Quiesced {
		x.stats.DetectedAt = -1
	}
}

// syncStats assembles the runtime.Stats view of this run — the shape the
// sim invariant registry and recovery measurements consume.
func (x *Executor[S]) syncStats() runtime.Stats {
	st := runtime.Stats{
		Rounds:  x.stats.VRounds,
		Stable:  x.stats.Quiesced,
		History: x.hist,
	}
	for _, rs := range x.hist {
		st.Messages += rs.Messages
	}
	return st
}
