package async

import "time"

// Termination detection.
//
// The executor tracks the Dijkstra–Scholten deficit generalized to a
// non-diffusing computation: outstandingLinks is the number of directed
// links whose newest message has not been acked (each link carries at most
// one outstanding message under the newest-wins protocol, so the per-link
// deficit is 0 or 1), queued counts messages received but not yet
// processed, and pendingWork counts every scheduled non-probe event — sends
// in flight, retry timers, deferred steps, and the fault timeline itself
// (the detector must not declare while scheduled faults remain, the same
// discipline as sim.Perturber.Active). The system is passive exactly when
// all three are zero.
//
// A single passive observation is not sufficient in a real distributed
// counting scheme: counters are read at different moments and activity may
// slip between reads. The executor therefore applies Mattern's
// double-counting rule: quiescence is declared only at the second
// consecutive passive probe whose activity fingerprint (sends, deliveries,
// state changes, acks) is unchanged from the first, proving no activity
// occurred in between. Inside this single-loop simulation the first passive
// probe is already conclusive; keeping the protocol-faithful confirmation
// costs one probe period and keeps DetectedAt honest about detection lag —
// LastActivity is the ground truth it is judged against.

// fingerprint snapshots the monotone activity counters the double-counting
// rule compares across consecutive probes.
func (x *Executor[S]) fingerprint() [4]int {
	return [4]int{
		x.stats.Sent + x.stats.Retries,
		x.stats.Delivered,
		x.stats.Changes,
		x.stats.Acked,
	}
}

// handleProbe runs one detector probe and re-arms the probe chain unless
// quiescence was declared. Probes are excluded from pendingWork so the
// detector never observes itself as activity.
func (x *Executor[S]) handleProbe() {
	if x.passive() {
		fp := x.fingerprint()
		if x.prevPassive && fp == x.prevFP {
			x.declared = true
			x.stats.Quiesced = true
			x.stats.DetectedAt = x.now
			return
		}
		x.prevPassive = true
		x.prevFP = fp
	} else {
		x.prevPassive = false
	}
	x.push(event[S]{at: x.now + x.cfg.DetectEvery, kind: evProbe})
}

// reopen resets the detector after externally injected activity (the heal
// adapter's fault application and repair patches), restarting the probe
// chain if a previous declaration stopped it.
func (x *Executor[S]) reopen() {
	x.prevPassive = false
	if x.declared {
		x.declared = false
		x.stats.Quiesced = false
		x.stats.DetectedAt = -1
		x.push(event[S]{at: x.now + x.cfg.DetectEvery, kind: evProbe})
	}
}

func timeNow() time.Time                  { return time.Now() }
func timeSince(t time.Time) time.Duration { return time.Since(t) }
