package async

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"structura/internal/sim"
)

// resultFingerprint canonicalizes everything observable about an async
// scenario Result — the mirror of internal/sim's fingerprint plus the
// transport accounting. Two runs of the same (scenario, seed, schedule,
// config) tuple must produce identical fingerprints.
func resultFingerprint(r *Result) string {
	var b strings.Builder
	w := r.World
	fmt.Fprintf(&b, "async sent=%d retries=%d delivered=%d acked=%d dups=%d shed=%d blocked=%d lost=%d changes=%d\n",
		r.Async.Sent, r.Async.Retries, r.Async.Delivered, r.Async.Acked, r.Async.Dups,
		r.Async.Shed, r.Async.Blocked, r.Async.Lost, r.Async.Changes)
	fmt.Fprintf(&b, "async last=%d detected=%d quiesced=%v vrounds=%d\n",
		r.Async.LastActivity, r.Async.DetectedAt, r.Async.Quiesced, r.Async.VRounds)
	fmt.Fprintf(&b, "stats rounds=%d msgs=%d stable=%v\n", w.Stats.Rounds, w.Stats.Messages, w.Stats.Stable)
	for _, rs := range w.Stats.History {
		fmt.Fprintf(&b, "h %d %d %d\n", rs.Round, rs.Changed, rs.Messages)
	}
	fmt.Fprintf(&b, "lastFault=%d recovery=%d quiesced=%v\n", r.LastFault, r.RecoveryRounds, r.Quiesced)
	for _, e := range w.Trace {
		fmt.Fprintf(&b, "t %s\n", e)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "v %s\n", v)
	}
	fmt.Fprintf(&b, "edges %v\n", w.Graph.Edges())
	if w.MIS != nil {
		fmt.Fprintf(&b, "mis %v %v\n", w.MIS.Colors, w.MIS.Stable)
	}
	if w.Dist != nil {
		fmt.Fprintf(&b, "dist %v %v\n", w.Dist.Dist, w.Dist.Stable)
	}
	if w.Cube != nil {
		fmt.Fprintf(&b, "cube %v %v %v %v\n", w.Cube.Faulty, w.Cube.Levels, w.Cube.MinLevels, w.Cube.Peaks)
	}
	if w.Rev != nil {
		keys := make([]int, 0, len(w.Rev.PerNode))
		for k := range w.Rev.PerNode {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(&b, "rev sinks=%v fails=%d total=%d stable=%v per=", w.Rev.Sinks, w.Rev.Fails, w.Rev.Total, w.Rev.Stable)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d ", k, w.Rev.PerNode[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// scenarioCase couples each builtin scenario with a seeded adversarial
// schedule and delay model it is expected to survive: quiesce within budget,
// pass every registered invariant, and replay bit-identically.
type scenarioCase struct {
	scenario string
	seed     uint64
	sch      sim.Schedule
	cfg      Config
}

func adversarialCases() []scenarioCase {
	return []scenarioCase{
		{
			scenario: "distvec",
			seed:     3,
			sch:      sim.Schedule{Horizon: 6, MsgLoss: 0.1},
			cfg:      Config{Delay: Delay{Kind: Uniform, Base: 2, Spread: 10}},
		},
		{
			scenario: "mis",
			seed:     5,
			sch:      sim.Schedule{Horizon: 6, MsgLoss: 0.1},
			cfg:      Config{Delay: Delay{Kind: Uniform, Base: 1, Spread: 6}},
		},
		{
			// Seed 5 draws adjacent faults, the only configuration where two
			// faults in a 4-cube actually drag safety levels down and create
			// traffic for the loss schedule to bite.
			scenario: "hypercube",
			seed:     5,
			sch:      sim.Schedule{Horizon: 6, MsgLoss: 0.05},
			cfg:      Config{Delay: Delay{Kind: Bimodal, Base: 2, Spread: 20, SlowOneIn: 6}},
		},
		{
			scenario: "reversal-full",
			seed:     1,
			sch:      sim.Schedule{Horizon: 4},
			cfg:      Config{Delay: Delay{Kind: Uniform, Base: 2, Spread: 6}},
		},
	}
}

// TestScenariosUnderAdversarialSchedules is the scenario-level acceptance
// criterion: all four message-driven scenarios reach detector-confirmed
// quiescence under seeded loss/jitter/reorder schedules with every
// registered invariant clean.
func TestScenariosUnderAdversarialSchedules(t *testing.T) {
	for _, tc := range adversarialCases() {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			res, err := Explore(tc.scenario, tc.seed, tc.sch, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Quiesced {
				t.Fatalf("did not quiesce: %s", res)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariant violations: %v", res.Violations)
			}
			if res.Async.VRounds <= 0 {
				t.Fatalf("no virtual rounds recorded: %+v", res.Async)
			}
			if tc.sch.MsgLoss > 0 && res.Async.Retries == 0 {
				t.Errorf("loss schedule produced no retransmissions: %+v", res.Async)
			}
		})
	}
}

// TestScenarioReplayIsBitIdentical re-runs every adversarial case and
// demands identical fingerprints — the replay guarantee Explore documents.
func TestScenarioReplayIsBitIdentical(t *testing.T) {
	for _, tc := range adversarialCases() {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			first, err := Explore(tc.scenario, tc.seed, tc.sch, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			again, err := Explore(tc.scenario, tc.seed, tc.sch, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := resultFingerprint(first), resultFingerprint(again); a != b {
				t.Fatalf("replay diverged:\n--- first\n%s\n--- again\n%s", a, b)
			}
		})
	}
}

// TestExploreUnknownScenario pins the error contract for scenarios with no
// async counterpart.
func TestExploreUnknownScenario(t *testing.T) {
	if _, err := Explore("nope", 1, sim.Schedule{}, Config{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestScenariosRegistryMirrorsSim checks every async scenario resolves and
// is listed sorted — the CLI's -list contract.
func TestScenariosRegistryMirrorsSim(t *testing.T) {
	list := Scenarios()
	if len(list) != 4 {
		t.Fatalf("registry has %d scenarios, want 4: %v", len(list), list)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("registry not sorted: %q before %q", list[i-1].Name, list[i].Name)
		}
	}
	for _, s := range list {
		if _, err := ScenarioByName(s.Name); err != nil {
			t.Fatal(err)
		}
		if s.Desc == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
	}
}
