package async

import (
	"fmt"
	"math"

	"structura/internal/graph"
	"structura/internal/heal"
	"structura/internal/sim"
)

// DistVecHealEngine adapts the asynchronous executor to heal.Engine: the
// supervisor's detect → repair → escalate cycle drives a message-passing
// distance-vector process instead of a synchronous kernel, unchanged. The
// executor runs in incremental mode — the supervisor's fault stream injects
// events at the current virtual time and the engine advances virtual time
// window by window between checks.
//
// The step rule is the capped Bellman–Ford variant: any hop count reaching
// n is reported as +Inf. Without the cap a partition never quiesces
// (count-to-infinity); with it the process reaches the same fixpoint the
// distvec-bfs-agreement invariant expects (+Inf exactly on nodes the
// destination cannot reach).
type DistVecHealEngine struct {
	x    *Executor[float64]
	dest int
	n    int
}

var _ heal.Engine = (*DistVecHealEngine)(nil)

// NewDistVecHealEngine builds the engine over g and settles it to its
// initial fixpoint so supervision starts from a correct labeling.
func NewDistVecHealEngine(g *graph.Graph, dest int, cfg Config) (*DistVecHealEngine, error) {
	n := g.N()
	if dest < 0 || dest >= n {
		return nil, fmt.Errorf("async: destination %d out of range [0,%d)", dest, n)
	}
	x, err := NewExecutor(g,
		func(v int) float64 {
			if v == dest {
				return 0
			}
			return math.Inf(1)
		},
		func(v int, self float64, nbrs []float64) (float64, bool) {
			if v == dest {
				return 0, false
			}
			best := math.Inf(1)
			for _, d := range nbrs {
				if d+1 < best {
					best = d + 1
				}
			}
			if best >= float64(n) {
				best = math.Inf(1)
			}
			return best, best != self
		}, sim.Schedule{}, cfg)
	if err != nil {
		return nil, err
	}
	e := &DistVecHealEngine{x: x, dest: dest, n: n}
	if _, ok := x.settle(4*n + 8); !ok {
		return nil, fmt.Errorf("async: initial distance-vector convergence did not settle")
	}
	x.resetChanged()
	return e, nil
}

func (e *DistVecHealEngine) Name() string { return "distvec-async" }

// Live returns the current support topology (read-only to callers).
func (e *DistVecHealEngine) Live() *graph.Graph { return e.x.Live() }

// Dist returns the current distance labels.
func (e *DistVecHealEngine) Dist() []float64 { return e.x.States() }

// ExecutorStats exposes the underlying transport accounting.
func (e *DistVecHealEngine) ExecutorStats() Stats { return e.x.stats }

// Apply injects one churn event at the current virtual time.
func (e *DistVecHealEngine) Apply(ev sim.Event) (dirty []int, applied bool) {
	return e.x.applyEventNow(ev)
}

// CheckLocal settles in-flight traffic (bounded), then verifies the
// Bellman–Ford fixpoint equation at the dirtied nodes and their neighbors.
// At passivity every view equals its sender's state (zero ack deficit), so
// the check is exact; if the settle bound is hit mid-flight a transient
// disagreement may be reported, and the supervisor's repair–verify cycle
// absorbs it.
func (e *DistVecHealEngine) CheckLocal(dirty []int) []sim.Violation {
	e.x.settle(4*e.n + 8)
	seen := map[int]bool{}
	var frontier []int
	add := func(v int) {
		if v >= 0 && v < e.n && !seen[v] {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, v := range dirty {
		add(v)
		e.x.live.EachNeighbor(v, func(w int, _ float64) { add(w) })
	}
	var out []sim.Violation
	for _, v := range frontier {
		if viol, bad := e.checkNode(v); bad {
			out = append(out, viol)
		}
	}
	return out
}

// checkNode evaluates the fixpoint equation at v against the live
// neighborhood's current states.
func (e *DistVecHealEngine) checkNode(v int) (sim.Violation, bool) {
	got := e.x.state[v]
	want := e.ruleAt(v)
	if got == want || (math.IsInf(got, 1) && math.IsInf(want, 1)) {
		return sim.Violation{}, false
	}
	return sim.Violation{
		Invariant: "distvec-local",
		Node:      v,
		Edge:      [2]int{-1, -1},
		Detail:    fmt.Sprintf("label %v, fixpoint rule gives %v", got, want),
	}, true
}

func (e *DistVecHealEngine) ruleAt(v int) float64 {
	if v == e.dest {
		return 0
	}
	best := math.Inf(1)
	e.x.live.EachNeighbor(v, func(w int, _ float64) {
		if d := e.x.state[w] + 1; d < best {
			best = d
		}
	})
	if best >= float64(e.n) {
		best = math.Inf(1)
	}
	return best
}

// Repair poisons each violated node to +Inf (endpoint poisoning: the
// neighborhood re-derives the honest distance instead of trusting a stale
// one) and lets the message-driven relaxation settle under the budget.
func (e *DistVecHealEngine) Repair(viols []sim.Violation, b heal.Budget) heal.RepairOutcome {
	e.x.resetChanged()
	poisoned := map[int]bool{}
	for _, viol := range viols {
		v := viol.Node
		if v < 0 || v >= e.n || v == e.dest || poisoned[v] {
			continue
		}
		poisoned[v] = true
		e.x.patch(v, math.Inf(1))
	}
	// A poisoned node re-derives only when traffic reaches it; pull fresh
	// announcements from its neighbors so isolated poisonings still heal.
	for v := range poisoned {
		e.x.refresh(v)
	}
	budgetW := b.MaxRounds
	if budgetW <= 0 {
		budgetW = 4*e.n + 8
	}
	rounds, settled := e.x.settle(budgetW)
	touched := e.x.resetChanged()
	ok := settled && (b.MaxTouched <= 0 || len(touched) <= b.MaxTouched)
	return heal.RepairOutcome{Touched: touched, Rounds: rounds, OK: ok}
}

// Recompute resets every label to its init value and re-converges from
// scratch — the escalation path.
func (e *DistVecHealEngine) Recompute() (int, error) {
	for v := 0; v < e.n; v++ {
		if v == e.dest {
			e.x.patch(v, 0)
			continue
		}
		e.x.patch(v, math.Inf(1))
	}
	rounds, settled := e.x.settle(4*e.n + 8)
	if !settled {
		return rounds, fmt.Errorf("async: full recompute did not settle in %d windows", 4*e.n+8)
	}
	e.x.resetChanged()
	return rounds, nil
}

// Snapshot settles outstanding traffic, then assembles the World the
// invariant registry judges. Settling first keeps the final sweep honest:
// a mid-flight view is not a violation of the labeling, only of the
// snapshot's timing.
func (e *DistVecHealEngine) Snapshot() *sim.World {
	_, settled := e.x.settle(4*e.n + 8)
	return &sim.World{
		Scenario:  "distvec",
		Graph:     e.x.Live(),
		Stats:     e.x.syncStats(),
		Trace:     e.x.Trace(),
		LastFault: e.x.LastFaultRound(),
		Dist:      &sim.DistWorld{Dest: e.dest, Dist: e.x.States(), Stable: settled},
	}
}
