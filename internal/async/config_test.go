package async

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"structura/internal/gen"
	"structura/internal/sim"
)

// TestDefaultsEveryUnsetCombination sweeps all 2^6 combinations of the six
// interacting scalar fields (RoundTicks, ProcTicks, MailboxCap, RTO, MaxRTO,
// DetectEvery) being set or left zero, and asserts the resolved config is
// valid in every case — in particular that no combination yields a zero or
// inverted RTO window. This pins the defaulting ORDER: RoundTicks must be
// resolved before RTO (4x) and MaxRTO (64x) derive from it, and the
// MaxRTO >= RTO floor must run after both.
func TestDefaultsEveryUnsetCombination(t *testing.T) {
	type field struct {
		name string
		set  func(*Config)
	}
	fields := []field{
		{"RoundTicks", func(c *Config) { c.RoundTicks = 5 }},
		{"ProcTicks", func(c *Config) { c.ProcTicks = 2 }},
		{"MailboxCap", func(c *Config) { c.MailboxCap = 3 }},
		{"RTO", func(c *Config) { c.RTO = 7 }},
		{"MaxRTO", func(c *Config) { c.MaxRTO = 9 }},
		{"DetectEvery", func(c *Config) { c.DetectEvery = 11 }},
	}
	for mask := 0; mask < 1<<len(fields); mask++ {
		name := ""
		var cfg Config
		for i, f := range fields {
			if mask&(1<<i) != 0 {
				f.set(&cfg)
				name += f.name + "+"
			}
		}
		if name == "" {
			name = "all-unset"
		}
		t.Run(fmt.Sprintf("%03d/%s", mask, name), func(t *testing.T) {
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate: %v (config %+v)", err, cfg)
			}
			r := cfg.withDefaults()
			if r.RoundTicks < 1 || r.ProcTicks < 1 || r.MailboxCap < 1 || r.DetectEvery < 1 {
				t.Fatalf("unresolved scalar: %+v", r)
			}
			if r.RTO < 1 {
				t.Fatalf("zero RTO window: %+v", r)
			}
			if r.MaxRTO < r.RTO {
				t.Fatalf("inverted RTO window (MaxRTO %d < RTO %d): %+v", r.MaxRTO, r.RTO, r)
			}
			// Explicitly set fields must survive resolution untouched,
			// except MaxRTO, which is floored at the resolved RTO.
			if mask&1 != 0 && r.RoundTicks != 5 {
				t.Fatalf("RoundTicks overridden: %+v", r)
			}
			if mask&8 != 0 && r.RTO != 7 {
				t.Fatalf("RTO overridden: %+v", r)
			}
			if mask&16 != 0 && r.MaxRTO != 9 && r.MaxRTO != r.RTO {
				t.Fatalf("MaxRTO neither kept nor floored at RTO: %+v", r)
			}
		})
	}
}

// TestDefaultsDerivedWindows pins the documented derivations against the
// resolved values: RTO = 4 round windows, MaxRTO = 64, detector probes once
// per window.
func TestDefaultsDerivedWindows(t *testing.T) {
	r := Config{RoundTicks: 10}.withDefaults()
	if r.RTO != 40 || r.MaxRTO != 640 || r.DetectEvery != 10 {
		t.Fatalf("derived windows wrong: RTO=%d MaxRTO=%d DetectEvery=%d", r.RTO, r.MaxRTO, r.DetectEvery)
	}
	// An explicit RTO above the derived MaxRTO must lift MaxRTO, not invert.
	r = Config{RoundTicks: 1, RTO: 1000}.withDefaults()
	if r.MaxRTO < r.RTO {
		t.Fatalf("explicit RTO %d inverted against MaxRTO %d", r.RTO, r.MaxRTO)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"overflowed RTO derivation", Config{RoundTicks: math.MaxInt64 / 2}},
		{"negative MaxRounds", Config{MaxRounds: -1}},
		{"negative delay base with spread", Config{Delay: Delay{Base: -3, Spread: 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("error %v does not wrap ErrConfig", err)
			}
		})
	}
}

// TestNewExecutorValidates ensures the constructor rejects an invalid
// config instead of running with an overflowed window.
func TestNewExecutorValidates(t *testing.T) {
	g := gen.Ring(4)
	_, err := NewExecutor(g, hashInit, maxRule,
		sim.Schedule{Horizon: 2}, Config{RoundTicks: math.MaxInt64 / 2})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("NewExecutor error %v, want ErrConfig", err)
	}
}
