package async

import (
	"strings"
	"testing"

	"structura/internal/sim"
)

// TestCompareMonotoneScenariosAgree checks the confluence claim Compare
// documents: the monotone fixpoint scenarios (distvec, hypercube) and the
// MIS election reach the same final world under both execution models when
// both replay the identical concrete fault timeline.
func TestCompareMonotoneScenariosAgree(t *testing.T) {
	cases := []struct {
		scenario string
		seed     uint64
		sch      sim.Schedule
	}{
		{"distvec", 3, sim.Schedule{Horizon: 8, ChurnAdd: 1, ChurnRemove: 1, ChurnEvery: 2}},
		{"mis", 4, sim.Schedule{Horizon: 6, MsgLoss: 0.2}},
		{"hypercube", 5, sim.Schedule{Horizon: 6}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			c, err := Compare(tc.scenario, tc.seed, tc.sch,
				Config{Delay: Delay{Kind: Uniform, Base: 2, Spread: 9}})
			if err != nil {
				t.Fatal(err)
			}
			if c.Diverged() {
				t.Fatalf("execution models diverged:\n%s", strings.Join(c.Divergences, "\n"))
			}
			if !c.Sync.Quiesced || !c.Async.Quiesced {
				t.Fatalf("quiescence: sync=%v async=%v", c.Sync.Quiesced, c.Async.Quiesced)
			}
		})
	}
}

// TestCompareDetectsReversalDivergence pins Compare's reason to exist: full
// link reversal is schedule-dependent, and under delivery reorder the final
// orientation differs from the synchronous round schedule. The divergence
// must be reported, not smoothed over.
func TestCompareDetectsReversalDivergence(t *testing.T) {
	c, err := Compare("reversal-full", 2,
		sim.Schedule{Horizon: 8, ChurnRemove: 2},
		Config{Delay: Delay{Kind: Bimodal, Base: 2, Spread: 24, SlowOneIn: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Diverged() {
		t.Fatal("reversal under reorder reported no divergence; the diff is blind")
	}
	found := false
	for _, d := range c.Divergences {
		if strings.Contains(d, "reversal") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no reversal-orientation divergence among: %v", c.Divergences)
	}
}

// TestCompareReplaysSameTimeline checks the churn timeline is shared: after
// a Compare with churn, both worlds hold the same live edge set (an edge-set
// divergence would be an executor bug, and would poison every label diff).
func TestCompareReplaysSameTimeline(t *testing.T) {
	c, err := Compare("distvec", 6,
		sim.Schedule{Horizon: 8, ChurnAdd: 1, ChurnRemove: 1, ChurnEvery: 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Divergences {
		if strings.HasPrefix(d, "edges:") {
			t.Fatalf("live edge sets diverged on a shared timeline: %s", d)
		}
	}
	if d := diffEdges(c.Sync.World.Graph, c.Async.World.Graph); d != "" {
		t.Fatalf("edge diff: %s", d)
	}
}

// TestConcreteReplayZeroesDraws pins the replay-schedule transformation.
func TestConcreteReplayZeroesDraws(t *testing.T) {
	sch := sim.Schedule{
		Horizon: 9, Budget: 40, MsgLoss: 0.5, CrashProb: 0.1, SkewProb: 0.2,
		ChurnAdd: 2, ChurnRemove: 3,
	}
	events := []sim.Event{{Round: 1, Op: sim.OpRemoveEdge, U: 0, V: 1}}
	got := ConcreteReplay(sch, events)
	if got.MsgLoss != 0 || got.CrashProb != 0 || got.SkewProb != 0 ||
		got.ChurnAdd != 0 || got.ChurnRemove != 0 {
		t.Fatalf("probabilistic draws survived: %+v", got)
	}
	if got.Horizon != 9 || got.Budget != 40 {
		t.Fatalf("windows not preserved: %+v", got)
	}
	if len(got.Events) != 1 {
		t.Fatalf("scripted events not installed: %+v", got)
	}
}
