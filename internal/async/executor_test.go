package async

import (
	"context"
	"fmt"
	stdruntime "runtime"
	"strings"
	"testing"

	"structura/internal/gen"
	"structura/internal/graph"
	"structura/internal/sim"
)

// maxRule is the distributed-max labeling: the canonical confluent rule —
// whatever the delivery order, the fixpoint is the per-component maximum of
// the initial values.
func maxRule(v int, self int, nbrs []int) (int, bool) {
	best := self
	for _, nb := range nbrs {
		if nb > best {
			best = nb
		}
	}
	return best, best != self
}

func hashInit(v int) int { return (v*2654435761 + 17) % 1009 }

func globalMax(n int) int {
	best := 0
	for v := 0; v < n; v++ {
		if h := hashInit(v); h > best {
			best = h
		}
	}
	return best
}

func requireAllEqual(t *testing.T, states []int, want int) {
	t.Helper()
	for v, s := range states {
		if s != want {
			t.Fatalf("node %d settled at %d, want the global max %d", v, s, want)
		}
	}
}

func TestAtLeastOnceUnderLoss(t *testing.T) {
	const n = 24
	g := gen.Ring(n)
	sch := sim.Schedule{Horizon: 12, MsgLoss: 0.4}
	x, err := NewExecutor(g, hashInit, maxRule, sch, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quiesced {
		t.Fatalf("run under 40%% loss did not quiesce: %+v", st)
	}
	// 40% loss on a ring must both drop messages and recover them.
	if st.Lost == 0 {
		t.Error("no message was lost under MsgLoss=0.4")
	}
	if st.Retries == 0 {
		t.Error("no retransmission happened; at-least-once was never exercised")
	}
	requireAllEqual(t, states, globalMax(n))
	if st.DetectedAt < st.LastActivity {
		t.Errorf("detector declared at t=%d before the last activity t=%d", st.DetectedAt, st.LastActivity)
	}
}

// TestBackpressure drives a hot receiver (a star hub with slow processing
// and a tiny mailbox) under both full-mailbox policies. Block must hold the
// overflow and deliver everything without retransmission pressure; Shed must
// drop at the mailbox and recover via retry. Both must reach the same
// fixpoint.
func TestBackpressure(t *testing.T) {
	const leaves = 24
	g := graph.New(leaves + 1)
	for v := 1; v <= leaves; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	run := func(p Policy) (states []int, st Stats) {
		// Short, tightly-capped RTO: with 22 shed messages admitted two per
		// retry burst, an uncapped exponential backoff would outlast any
		// reasonable budget — shed recovery is only practical when MaxRTO
		// stays near the receiver's drain rate.
		x, err := NewExecutor(g, hashInit, maxRule, sim.Schedule{Horizon: 1},
			Config{Seed: 3, MailboxCap: 2, ProcTicks: 4, Policy: p,
				Delay: Delay{Kind: Fixed, Base: 1}, RTO: 8, MaxRTO: 64})
		if err != nil {
			t.Fatal(err)
		}
		states, st, err = x.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Quiesced {
			t.Fatalf("policy %v did not quiesce: %+v", p, st)
		}
		return states, st
	}
	bStates, bStats := run(Block)
	sStates, sStats := run(Shed)
	if bStats.Blocked == 0 {
		t.Errorf("Block policy never blocked (stats %+v); the hub was not saturated", bStats)
	}
	if bStats.Shed != 0 {
		t.Errorf("Block policy shed %d messages", bStats.Shed)
	}
	if sStats.Shed == 0 {
		t.Errorf("Shed policy never shed (stats %+v); the hub was not saturated", sStats)
	}
	if sStats.Retries == 0 {
		t.Error("Shed policy produced no retries; shed messages were never recovered")
	}
	want := globalMax(leaves + 1)
	requireAllEqual(t, bStates, want)
	requireAllEqual(t, sStates, want)
}

func TestCrashRestartRecovers(t *testing.T) {
	const n = 16
	g := gen.Ring(n)
	sch := sim.Schedule{
		Horizon: 8,
		Events: []sim.Event{
			{Round: 2, Op: sim.OpCrash, U: 3, For: 2},
			{Round: 3, Op: sim.OpCrash, U: 11, For: 1},
		},
	}
	x, err := NewExecutor(g, hashInit, maxRule, sch, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quiesced {
		t.Fatalf("crash/restart run did not quiesce: %+v", st)
	}
	// The restarts reset to init with amnesia; retransmission and the
	// restart broadcast must still converge everyone to the global max.
	requireAllEqual(t, states, globalMax(n))
	if x.LastFaultRound() < 3 {
		t.Errorf("last fault round = %d, want >= 3 (scripted crashes)", x.LastFaultRound())
	}
}

// TestPausedNodeKeepsReceiving pins the bounded-asynchrony semantics: a
// paused node defers its step but its mailbox keeps absorbing messages, so
// on resume one deferred step suffices.
func TestPausedNodeKeepsReceiving(t *testing.T) {
	const n = 12
	g := gen.Ring(n)
	sch := sim.Schedule{
		Horizon: 6,
		Events:  []sim.Event{{Round: 1, Op: sim.OpSkip, U: 4, For: 3}},
	}
	x, err := NewExecutor(g, hashInit, maxRule, sch, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quiesced {
		t.Fatalf("skewed run did not quiesce: %+v", st)
	}
	requireAllEqual(t, states, globalMax(n))
}

func TestContextCancellation(t *testing.T) {
	g := gen.Ring(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the run: the loop must notice and stop cleanly
	x, err := NewExecutor(g, hashInit, maxRule, sim.Schedule{Horizon: 4}, Config{Seed: 1, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := x.Run()
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	// Cancellation is clean: the partial state is consistent (full length,
	// no quiescence claim) even though the run was cut short.
	if len(states) != 64 {
		t.Fatalf("partial states have length %d, want 64", len(states))
	}
	if st.Quiesced {
		t.Error("cancelled run claims quiescence")
	}
	if st.DetectedAt != -1 {
		t.Errorf("cancelled run claims a detection time %d", st.DetectedAt)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := gen.Ring(8)
	// A rule that never stabilizes: every step reports a change.
	unstable := func(v int, self int, nbrs []int) (int, bool) { return self + 1, true }
	x, err := NewExecutor(g, func(int) int { return 0 }, unstable,
		sim.Schedule{Horizon: 2}, Config{Seed: 1, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Quiesced {
		t.Fatal("endlessly-changing rule quiesced")
	}
	if st.DetectedAt != -1 {
		t.Errorf("budget-exhausted run has DetectedAt=%d, want -1", st.DetectedAt)
	}
}

// TestDetectorNoFalseDeclaration checks soundness on a run with late
// activity: the detector must never declare before the true last activity.
func TestDetectorNoFalseDeclaration(t *testing.T) {
	const n = 24
	g := gen.Ring(n)
	sch := sim.Schedule{
		Horizon: 10,
		Events:  []sim.Event{{Round: 9, Op: sim.OpCrash, U: 5, For: 1}},
	}
	x, err := NewExecutor(g, hashInit, maxRule, sch, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quiesced {
		t.Fatalf("run did not quiesce: %+v", st)
	}
	if st.DetectedAt < st.LastActivity {
		t.Fatalf("detector declared at t=%d, before the last activity t=%d — unsound",
			st.DetectedAt, st.LastActivity)
	}
}

// statsFingerprint canonicalizes every observable of a run for bit-identical
// replay comparisons.
func statsFingerprint(states []int, st Stats, trace []sim.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d retries=%d delivered=%d acked=%d dups=%d shed=%d blocked=%d lost=%d changes=%d\n",
		st.Sent, st.Retries, st.Delivered, st.Acked, st.Dups, st.Shed, st.Blocked, st.Lost, st.Changes)
	fmt.Fprintf(&b, "last=%d detected=%d quiesced=%v vrounds=%d\n", st.LastActivity, st.DetectedAt, st.Quiesced, st.VRounds)
	for _, rs := range st.History {
		fmt.Fprintf(&b, "h %d %d %d\n", rs.Round, rs.Changed, rs.Messages)
	}
	for _, e := range trace {
		fmt.Fprintf(&b, "t %v\n", e)
	}
	fmt.Fprintf(&b, "s %v\n", states)
	return b.String()
}

// TestDeterministicAcrossGOMAXPROCS is the replay acceptance criterion: the
// single-loop DES must produce bit-identical runs whatever the Go scheduler
// does, so the same (seed, schedule, config) tuple fingerprints identically
// at GOMAXPROCS=1 and at full parallelism.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sch := sim.Schedule{
		Horizon:     8,
		MsgLoss:     0.2,
		CrashProb:   0.02,
		ChurnAdd:    1,
		ChurnRemove: 1,
		ChurnEvery:  2,
	}
	cfg := Config{Seed: 9, Delay: Delay{Kind: Bimodal, Base: 2, Spread: 9, SlowOneIn: 4}}
	run := func() string {
		g := gen.Ring(32)
		x, err := NewExecutor(g, hashInit, maxRule, sch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		states, st, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		return statsFingerprint(states, st, x.Trace())
	}
	prev := stdruntime.GOMAXPROCS(1)
	fp1 := run()
	stdruntime.GOMAXPROCS(prev)
	if prev == 1 {
		stdruntime.GOMAXPROCS(4)
		defer stdruntime.GOMAXPROCS(1)
	}
	fpN := run()
	if fp1 != fpN {
		t.Fatalf("run diverged across GOMAXPROCS settings:\n--- procs=1 ---\n%s--- procs=%d ---\n%s",
			fp1, stdruntime.GOMAXPROCS(0), fpN)
	}
}

// TestChurnReaddRejectsStaleInFlight pins the sequence-memory contract: when
// a link is removed and re-added, any pre-removal message still in flight
// must be rejected as stale rather than regress the receiver's view.
func TestChurnReaddRejectsStaleInFlight(t *testing.T) {
	const n = 16
	g := gen.Ring(n)
	sch := sim.Schedule{
		Horizon: 10,
		Events: []sim.Event{
			{Round: 2, Op: sim.OpRemoveEdge, U: 4, V: 5},
			{Round: 4, Op: sim.OpAddEdge, U: 4, V: 5},
		},
	}
	// Slow bimodal delays so a message can straddle the remove/re-add.
	cfg := Config{Seed: 13, Delay: Delay{Kind: Bimodal, Base: 2, Spread: 40, SlowOneIn: 2}}
	x, err := NewExecutor(g, hashInit, maxRule, sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quiesced {
		t.Fatalf("churned run did not quiesce: %+v", st)
	}
	requireAllEqual(t, states, globalMax(n))
}

// TestIncrementalSettleAndPatch exercises the unexported surface the heal
// adapter is built on: event injection at the current virtual time, state
// patching, and window-bounded settling.
func TestIncrementalSettleAndPatch(t *testing.T) {
	const n = 12
	g := gen.Ring(n)
	x, err := NewExecutor(g, hashInit, maxRule, sim.Schedule{}, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := x.settle(4*n + 8); !ok {
		t.Fatal("initial convergence did not settle")
	}
	requireAllEqual(t, x.States(), globalMax(n))
	// Patch a node below the fixpoint, then pull fresh announcements from
	// its neighbors: the arriving re-announcements must step the node back
	// up to the fixpoint even though no neighbor state changed.
	x.patch(3, -1)
	x.refresh(3)
	if _, ok := x.settle(4*n + 8); !ok {
		t.Fatal("post-patch settle did not converge")
	}
	if got := x.States()[3]; got != globalMax(n) {
		t.Fatalf("patched node re-settled at %d, want %d", got, globalMax(n))
	}
}
