package async

import (
	"fmt"
	"math"
	"sort"

	"structura/internal/graph"
	"structura/internal/sim"
)

// Comparison is one scenario run under both execution models on the same
// concrete fault timeline. The synchronous run executes first with tracing;
// the asynchronous run then replays the traced events (probabilities
// zeroed), so both sides see the identical fault sequence and any
// divergence isolates the execution model — delays, reorder, retries —
// rather than differing random draws.
type Comparison struct {
	Scenario string
	Seed     uint64

	Sync  *sim.Result // synchronous run, judged
	Async *Result     // asynchronous replay, judged

	// Divergences lists every observed disagreement between the two final
	// worlds: labels, live edge sets, quiescence verdicts. Empty means the
	// async executor reproduced the synchronous outcome exactly.
	Divergences []string
}

// Diverged reports whether the two executions disagree.
func (c *Comparison) Diverged() bool { return len(c.Divergences) > 0 }

// Compare runs `scenario` synchronously under (seed, sch), replays the
// traced fault timeline on the asynchronous executor under cfg, and diffs
// the outcomes. MIS and the monotone fixpoint scenarios (distvec,
// hypercube) are expected to agree — their rules are confluent under
// delivery delay; full link reversal is schedule-dependent, and detecting
// when reordering changes its final orientation is precisely this
// function's purpose.
func Compare(scenario string, seed uint64, sch sim.Schedule, cfg Config) (*Comparison, error) {
	syncRes, err := sim.Explore(scenario, seed, sch)
	if err != nil {
		return nil, fmt.Errorf("async: sync leg: %w", err)
	}
	replay := ConcreteReplay(sch, syncRes.World.Trace)
	asyncRes, err := Explore(scenario, seed, replay, cfg)
	if err != nil {
		return nil, fmt.Errorf("async: async leg: %w", err)
	}
	c := &Comparison{
		Scenario: scenario,
		Seed:     seed,
		Sync:     syncRes,
		Async:    asyncRes,
	}
	c.Divergences = diffWorlds(syncRes.World, asyncRes.World)
	if syncRes.Quiesced != asyncRes.Quiesced {
		c.Divergences = append(c.Divergences, fmt.Sprintf(
			"quiescence: sync=%v async=%v", syncRes.Quiesced, asyncRes.Quiesced))
	}
	return c, nil
}

// diffWorlds diffs the final labelings and live edge sets of two runs of
// the same scenario.
func diffWorlds(s, a *sim.World) []string {
	var out []string
	if d := diffEdges(s.Graph, a.Graph); d != "" {
		out = append(out, d)
	}
	switch {
	case s.MIS != nil && a.MIS != nil:
		for v := range s.MIS.Colors {
			if s.MIS.Colors[v] != a.MIS.Colors[v] {
				out = append(out, fmt.Sprintf("mis: node %d sync=%d async=%d",
					v, s.MIS.Colors[v], a.MIS.Colors[v]))
			}
		}
	case s.Dist != nil && a.Dist != nil:
		for v := range s.Dist.Dist {
			sv, av := s.Dist.Dist[v], a.Dist.Dist[v]
			if sv == av || (math.IsInf(sv, 1) && math.IsInf(av, 1)) {
				continue
			}
			out = append(out, fmt.Sprintf("distvec: node %d sync=%v async=%v", v, sv, av))
		}
	case s.Cube != nil && a.Cube != nil:
		for v := range s.Cube.Levels {
			if s.Cube.Levels[v] != a.Cube.Levels[v] {
				out = append(out, fmt.Sprintf("hypercube: node %d level sync=%d async=%d",
					v, s.Cube.Levels[v], a.Cube.Levels[v]))
			}
		}
	case s.Rev != nil && a.Rev != nil:
		// Heights are schedule-dependent; the meaningful artifact is the
		// orientation of each surviving support link.
		for _, e := range s.Graph.Edges() {
			if !a.Graph.HasEdge(e.From, e.To) {
				continue // already reported as an edge-set divergence
			}
			if s.Rev.PointsTo(e.From, e.To) != a.Rev.PointsTo(e.From, e.To) {
				out = append(out, fmt.Sprintf("reversal: link (%d,%d) oriented %s in sync, %s in async",
					e.From, e.To, orient(s.Rev, e.From, e.To), orient(a.Rev, e.From, e.To)))
			}
		}
		if len(s.Rev.Sinks) != len(a.Rev.Sinks) {
			out = append(out, fmt.Sprintf("reversal: sinks sync=%v async=%v", s.Rev.Sinks, a.Rev.Sinks))
		}
	}
	return out
}

func orient(rw *sim.RevWorld, u, v int) string {
	if rw.PointsTo(u, v) {
		return fmt.Sprintf("%d->%d", u, v)
	}
	return fmt.Sprintf("%d->%d", v, u)
}

// diffEdges compares the undirected live edge sets; both executors applied
// the same concrete churn timeline, so any gap is an executor bug rather
// than adversary randomness.
func diffEdges(s, a *graph.Graph) string {
	se, ae := edgeSet(s), edgeSet(a)
	var onlySync, onlyAsync []string
	for e := range se {
		if !ae[e] {
			onlySync = append(onlySync, e)
		}
	}
	for e := range ae {
		if !se[e] {
			onlyAsync = append(onlyAsync, e)
		}
	}
	if len(onlySync) == 0 && len(onlyAsync) == 0 {
		return ""
	}
	sort.Strings(onlySync)
	sort.Strings(onlyAsync)
	return fmt.Sprintf("edges: only-sync=%v only-async=%v", onlySync, onlyAsync)
}

func edgeSet(g *graph.Graph) map[string]bool {
	out := map[string]bool{}
	for _, e := range g.Edges() {
		u, v := e.From, e.To
		if u > v {
			u, v = v, u
		}
		out[fmt.Sprintf("%d-%d", u, v)] = true
	}
	return out
}
