package async

import (
	"fmt"
	"math"
	"sort"

	"structura/internal/graph"
	"structura/internal/hypercube"
	"structura/internal/labeling"
	"structura/internal/reversal"
	"structura/internal/sim"
)

// Result is one asynchronous fault-injected run, judged by the sim
// invariant registry. It mirrors sim.Result and adds the transport-level
// statistics the synchronous path has no analogue for.
type Result struct {
	Scenario string
	Seed     uint64
	Schedule sim.Schedule
	World    *sim.World

	// Quiesced reports a detector-confirmed termination within budget.
	Quiesced bool

	// LastFault is the last round window in which a fault applied (0 if none).
	LastFault int

	// RecoveryRounds counts round windows between the last fault and the
	// last state change, the async reading of sim.Result.RecoveryRounds.
	// -1 when the run never quiesced.
	RecoveryRounds int

	Violations []sim.Violation

	// Async carries the executor's transport and virtual-time accounting.
	Async Stats
}

func (r *Result) String() string {
	verdict := "OK"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("%d violation(s)", len(r.Violations))
	}
	return fmt.Sprintf("%s seed=%d vrounds=%d ticks=%d quiesced=%v recovery=%d retry=%.3f: %s",
		r.Scenario, r.Seed, r.Async.VRounds, r.Async.LastActivity, r.Quiesced,
		r.RecoveryRounds, r.Async.RetryOverhead(), verdict)
}

// Scenario couples a seeded topology with one labeling rule run on the
// asynchronous executor. The four entries mirror their synchronous
// counterparts in internal/sim rule-for-rule: same topology builders, same
// step functions, same World sections — only the execution model differs.
type Scenario struct {
	Name string
	Desc string
	Run  func(seed uint64, sch sim.Schedule, cfg Config) (*sim.World, Stats, error)
}

var scenarios = map[string]Scenario{}

func register(s Scenario) { scenarios[s.Name] = s }

// ScenarioByName finds a builtin async scenario.
func ScenarioByName(name string) (Scenario, error) {
	s, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("async: unknown scenario %q (no async counterpart registered)", name)
	}
	return s, nil
}

// Scenarios lists the builtin async scenarios sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	register(Scenario{
		Name: "mis",
		Desc: "three-color MIS election on a sparse random graph, message-driven",
		Run:  runMIS,
	})
	register(Scenario{
		Name: "distvec",
		Desc: "hop-count distance vectors toward node 0 on a chordal ring, message-driven",
		Run:  runDistVec,
	})
	register(Scenario{
		Name: "hypercube",
		Desc: "hypercube safety levels with seed-drawn faulty nodes, message-driven",
		Run:  runCube,
	})
	register(Scenario{
		Name: "reversal-full",
		Desc: "full link reversal on a chordal ring under link failures, message-driven",
		Run:  runReversalFull,
	})
}

// Explore runs a named async scenario under (seed, sch, cfg) and judges the
// final World with the sim invariant registry (all registered invariants
// when none are passed) — the asynchronous twin of sim.Explore, with the
// same replay guarantee: the (scenario, seed, sch, cfg) tuple reproduces
// the Result bit-for-bit at any GOMAXPROCS setting.
func Explore(scenario string, seed uint64, sch sim.Schedule, cfg Config, invs ...sim.Invariant) (*Result, error) {
	sc, err := ScenarioByName(scenario)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	w, st, err := sc.Run(seed, sch, cfg)
	if err != nil {
		return nil, err
	}
	if len(invs) == 0 {
		invs = sim.Invariants()
	}
	var violations []sim.Violation
	for _, inv := range invs {
		violations = append(violations, inv.Check(w)...)
	}
	return &Result{
		Scenario:       scenario,
		Seed:           seed,
		Schedule:       sch,
		World:          w,
		Quiesced:       st.Quiesced,
		LastFault:      w.LastFault,
		RecoveryRounds: recoveryRounds(w),
		Violations:     violations,
		Async:          st,
	}, nil
}

// recoveryRounds reads rounds-to-restabilize off the synthesized History,
// the same measure sim.Explore reports for the synchronous path.
func recoveryRounds(w *sim.World) int {
	if !w.Stats.Stable {
		return -1
	}
	if w.LastFault == 0 {
		return 0
	}
	lastActive := 0
	for _, rs := range w.Stats.History {
		if rs.Changed > 0 {
			lastActive = rs.Round
		}
	}
	if lastActive <= w.LastFault {
		return 0
	}
	return lastActive - w.LastFault
}

// ---- scenarios ---------------------------------------------------------

// misState mirrors the per-node state of labeling.DistributedMIS.
type misState struct {
	Color labeling.Color
	Prio  float64
}

func runMIS(seed uint64, sch sim.Schedule, cfg Config) (*sim.World, Stats, error) {
	g := sim.MISGraph(seed)
	prio := labeling.PriorityByID(g.N())
	// The step is labeling.DistributedMIS's rule verbatim: a Black neighbor
	// retires a White node to Gray; a White local priority maximum turns
	// Black.
	x, err := NewExecutor(g,
		func(v int) misState { return misState{Color: labeling.White, Prio: prio[v]} },
		func(v int, self misState, nbrs []misState) (misState, bool) {
			if self.Color != labeling.White {
				return self, false
			}
			for _, nb := range nbrs {
				if nb.Color == labeling.Black {
					self.Color = labeling.Gray
					return self, true
				}
			}
			localMax := true
			for _, nb := range nbrs {
				if nb.Color == labeling.White && nb.Prio > self.Prio {
					localMax = false
					break
				}
			}
			if localMax {
				self.Color = labeling.Black
				return self, true
			}
			return self, false
		}, sch, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	states, st, err := x.Run()
	if err != nil {
		return nil, st, err
	}
	colors := make([]labeling.Color, len(states))
	for v, s := range states {
		colors[v] = s.Color
	}
	return &sim.World{
		Scenario:  "mis",
		Graph:     x.Live(),
		Stats:     x.syncStats(),
		Trace:     x.Trace(),
		LastFault: x.LastFaultRound(),
		MIS:       &sim.MISWorld{Colors: colors, Stable: st.Quiesced},
	}, st, nil
}

func runDistVec(seed uint64, sch sim.Schedule, cfg Config) (*sim.World, Stats, error) {
	g := sim.DistVecRing(seed)
	const dest = 0
	x, err := NewExecutor(g,
		func(v int) float64 {
			if v == dest {
				return 0
			}
			return math.Inf(1)
		},
		func(v int, self float64, nbrs []float64) (float64, bool) {
			if v == dest {
				return 0, false
			}
			best := math.Inf(1)
			for _, d := range nbrs {
				if d+1 < best {
					best = d + 1
				}
			}
			return best, best != self
		}, sch, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	dist, st, err := x.Run()
	if err != nil {
		return nil, st, err
	}
	return &sim.World{
		Scenario:  "distvec",
		Graph:     x.Live(),
		Stats:     x.syncStats(),
		Trace:     x.Trace(),
		LastFault: x.LastFaultRound(),
		Dist:      &sim.DistWorld{Dest: dest, Dist: dist, Stable: st.Quiesced},
	}, st, nil
}

// cubeSt mirrors sim's monotonicity-instrumented safety-level state.
type cubeSt struct {
	Level, Min, Peak int
}

func runCube(seed uint64, sch sim.Schedule, cfg Config) (*sim.World, Stats, error) {
	cube := sim.FaultyCube(seed)
	g := cube.Graph()
	dim := cube.Dim()
	x, err := NewExecutor(g,
		func(v int) cubeSt {
			if cube.Faulty(v) {
				return cubeSt{Level: 0, Min: 0}
			}
			return cubeSt{Level: dim, Min: dim}
		},
		func(v int, self cubeSt, nbrs []cubeSt) (cubeSt, bool) {
			if cube.Faulty(v) {
				return cubeSt{Level: 0, Min: 0}, self.Level != 0
			}
			nl := make([]int, len(nbrs))
			for i, s := range nbrs {
				nl[i] = s.Level
			}
			l := hypercube.LevelFromNeighborLevels(nl, dim)
			out := self
			out.Level = l
			if l > out.Min && l > out.Peak {
				out.Peak = l
			}
			if l < out.Min {
				out.Min = l
			}
			return out, out != self
		}, sch, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	states, st, err := x.Run()
	if err != nil {
		return nil, st, err
	}
	n := g.N()
	cw := &sim.CubeWorld{
		Dim:       dim,
		Faulty:    make([]bool, n),
		Levels:    make([]int, n),
		MinLevels: make([]int, n),
		Peaks:     make([]int, n),
	}
	for v, s := range states {
		cw.Faulty[v] = cube.Faulty(v)
		cw.Levels[v] = s.Level
		cw.MinLevels[v] = s.Min
		cw.Peaks[v] = s.Peak
	}
	return &sim.World{
		Scenario:  "hypercube",
		Graph:     x.Live(),
		Stats:     x.syncStats(),
		Trace:     x.Trace(),
		LastFault: x.LastFaultRound(),
		Cube:      cw,
	}, st, nil
}

func runReversalFull(seed uint64, sch sim.Schedule, cfg Config) (*sim.World, Stats, error) {
	g := sim.ReversalRing(seed)
	const dest = 0
	dist, _, err := g.BFS(dest)
	if err != nil {
		return nil, Stats{}, err
	}
	n := g.N()
	for v, d := range dist {
		if d < 0 {
			return nil, Stats{}, fmt.Errorf("async: support disconnected at node %d", v)
		}
	}
	// Full reversal as a message-driven rule: a node whose every known
	// neighbor height is above its own (a sink under its local view) raises
	// itself just above the highest of them — reversal.Network's Full rule
	// evaluated against views instead of global heights. The activation
	// counters feed the O(n^2) work-bound invariant; the single-loop
	// executor makes closure-side counting deterministic.
	perNode := map[int]int{}
	total := 0
	if cfg.MaxRounds <= 0 && sch.Budget <= 0 {
		// Mirror the synchronous reversal budget: comfortably above the
		// O(n^2) reversal work bound, not the generic 4n+8 labeling budget.
		cfg.MaxRounds = sch.Horizon + 4*n*n
	}
	x, err := NewExecutor(g,
		func(v int) reversal.Height { return reversal.Height{Alpha: dist[v], ID: v} },
		func(v int, self reversal.Height, nbrs []reversal.Height) (reversal.Height, bool) {
			if v == dest || len(nbrs) == 0 {
				return self, false
			}
			maxA := self.Alpha
			for _, h := range nbrs {
				if h.Less(self) {
					return self, false // an outgoing link exists: not a sink
				}
				if h.Alpha > maxA {
					maxA = h.Alpha
				}
			}
			perNode[v]++
			total++
			return reversal.Height{Alpha: maxA + 1, Beta: self.Beta, ID: v}, true
		}, sch, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	// Reversal repairs after failures only; the variants have no
	// link-addition rule, so add events are recorded but not applied —
	// matching sim.runReversalLoop.
	x.skipAdds = true
	heights, st, err := x.Run()
	if err != nil {
		return nil, st, err
	}
	live := x.Live()
	fails := 0
	lastFail := 0
	for _, e := range x.Trace() {
		if e.Op == sim.OpRemoveEdge {
			fails++
			if e.Round > lastFail {
				lastFail = e.Round
			}
		}
	}
	pointsTo := func(u, v int) bool {
		return live.HasEdge(u, v) && heights[v].Less(heights[u])
	}
	var sinks []int
	for v := 0; v < n; v++ {
		if v == dest || live.Degree(v) == 0 {
			continue
		}
		sink := true
		live.EachNeighbor(v, func(w int, _ float64) {
			if heights[w].Less(heights[v]) {
				sink = false
			}
		})
		if sink {
			sinks = append(sinks, v)
		}
	}
	stable := st.Quiesced && len(sinks) == 0
	return &sim.World{
		Scenario:  "reversal-full",
		Graph:     live,
		Stats:     x.syncStats(),
		Trace:     x.Trace(),
		LastFault: x.LastFaultRound(),
		Rev: &sim.RevWorld{
			N:        n,
			Dest:     dest,
			Mode:     "reversal-full",
			Support:  live,
			PointsTo: pointsTo,
			Sinks:    sinks,
			Fails:    fails,
			Total:    total,
			PerNode:  perNode,
			Stable:   stable,
		},
	}, st, nil
}

// ConcreteReplay strips a schedule to scripted events only, preserving the
// horizon and budget windows — the async mirror of the unexported
// sim.concrete used by Minimize, needed by Compare to replay a traced sync
// run without its probabilistic draws.
func ConcreteReplay(sch sim.Schedule, events []sim.Event) sim.Schedule {
	sch.MsgLoss = 0
	sch.CrashProb = 0
	sch.SkewProb = 0
	sch.ChurnAdd = 0
	sch.ChurnRemove = 0
	sch.Events = events
	return sch
}

// reversalAlphasFor derives valid initial heights from BFS distances —
// exposed for tests that cross-check the async reversal scenario against
// reversal.Network on the same support.
func reversalAlphasFor(g *graph.Graph, dest int) ([]int, error) {
	dist, _, err := g.BFS(dest)
	if err != nil {
		return nil, err
	}
	alphas := make([]int, g.N())
	for v, d := range dist {
		if d < 0 {
			return nil, fmt.Errorf("async: support disconnected at node %d", v)
		}
		alphas[v] = d
	}
	return alphas, nil
}
