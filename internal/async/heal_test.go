package async

import (
	"math"
	"testing"

	"structura/internal/heal"
	"structura/internal/sim"
)

// requireBFSAgreement asserts the engine's labels sit at the exact BFS
// fixpoint of its live support — the ground truth the distvec-bfs-agreement
// invariant encodes, asserted directly so a judging gap cannot hide drift.
func requireBFSAgreement(t *testing.T, eng *DistVecHealEngine, ctx string) {
	t.Helper()
	bfs, _, err := eng.Live().BFS(0)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	for v, d := range eng.Dist() {
		want := math.Inf(1)
		if bfs[v] >= 0 {
			want = float64(bfs[v])
		}
		if d != want && !(math.IsInf(d, 1) && math.IsInf(want, 1)) {
			t.Errorf("%s: node %d label %v, BFS gives %v", ctx, v, d, want)
		}
	}
}

// TestSupervisedAsyncDistVecUnderChurn is the adapter acceptance criterion:
// heal.Supervisor drives the message-passing distance-vector process through
// a churn timeline unchanged, and every run ends at the BFS fixpoint with
// zero standing violations. Edge churn alone never trips the detector here —
// applyEventNow re-steps the dirtied endpoints and CheckLocal settles
// in-flight traffic, so the protocol absorbs topology changes on its own;
// the detect → repair cycle is exercised by the corruption tests below.
func TestSupervisedAsyncDistVecUnderChurn(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := sim.DistVecRing(seed)
		eng, err := NewDistVecHealEngine(g, 0, Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sup := &heal.Supervisor{Engine: eng}
		rep, err := sup.Run(seed, sim.Schedule{Horizon: 8, ChurnAdd: 1, ChurnRemove: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Standing) != 0 {
			t.Errorf("seed %d: %d standing violations, first: %s", seed, len(rep.Standing), rep.Standing[0])
		}
		if rep.Events == 0 {
			t.Errorf("seed %d: schedule applied no churn", seed)
		}
		requireBFSAgreement(t, eng, "supervised churn")
	}
}

// TestSupervisedSweepHealsSilentCorruption drives the full detect → repair
// state machine: a label silently corrupted behind the protocol's back (no
// broadcast, so no relaxation traffic can expose it) is invisible to local
// churn detection, caught by the periodic invariant sweep, and healed by the
// localized repair — the supervision loop the async adapter exists for.
func TestSupervisedSweepHealsSilentCorruption(t *testing.T) {
	g := sim.DistVecRing(1)
	eng, err := NewDistVecHealEngine(g, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Silent corruption: overwrite the state cell directly. patch() would
	// broadcast and let ordinary relaxation self-heal; a bit flip does not.
	victim := g.N() / 2
	eng.x.state[victim] = 1
	sup := &heal.Supervisor{Engine: eng, SweepEvery: 2}
	rep, err := sup.Run(1, sim.Schedule{Horizon: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detections) == 0 {
		t.Fatal("sweep never detected the silent corruption")
	}
	if rep.Repairs == 0 && rep.Escalations == 0 {
		t.Fatalf("corruption detected but never repaired: %+v", rep)
	}
	if len(rep.Standing) != 0 {
		t.Fatalf("standing violations after supervision: %v", rep.Standing)
	}
	requireBFSAgreement(t, eng, "post-supervision")
}

// TestAsyncEngineRepairHealsPoisonedLabel drives the engine surface
// directly: corrupt one label behind the supervisor's back, detect it with
// CheckLocal, repair it, and verify the repair touched a neighborhood, not
// the world.
func TestAsyncEngineRepairHealsPoisonedLabel(t *testing.T) {
	g := sim.DistVecRing(2)
	eng, err := NewDistVecHealEngine(g, 0, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// Corrupt a node far from the destination with a stale-low distance, the
	// lie endpoint poisoning exists to purge. Write the cell directly: a
	// patch() broadcast would hand the protocol the evidence to self-heal.
	victim := n / 2
	eng.x.state[victim] = 1
	viols := eng.CheckLocal([]int{victim})
	if len(viols) == 0 {
		t.Fatal("corrupted label not detected by CheckLocal")
	}
	out := eng.Repair(viols, heal.Budget{})
	if !out.OK {
		t.Fatalf("repair did not settle: %+v", out)
	}
	if len(out.Touched) == 0 || len(out.Touched) == n {
		t.Fatalf("repair touched %d of %d nodes; want a localized, non-empty set", len(out.Touched), n)
	}
	bfs, _, err := eng.Live().BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Dist()[victim], float64(bfs[victim]); got != want {
		t.Fatalf("victim healed to %v, BFS gives %v", got, want)
	}
}

// TestAsyncEngineRecompute pins the escalation path: a full reset
// re-converges to the BFS fixpoint.
func TestAsyncEngineRecompute(t *testing.T) {
	g := sim.DistVecRing(3)
	eng, err := NewDistVecHealEngine(g, 0, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recompute(); err != nil {
		t.Fatal(err)
	}
	bfs, _, err := eng.Live().BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range eng.Dist() {
		if bfs[v] >= 0 && d != float64(bfs[v]) {
			t.Fatalf("node %d recomputed to %v, BFS gives %d", v, d, bfs[v])
		}
	}
}
