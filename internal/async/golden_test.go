package async

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"structura/internal/sim"
)

// asyncGoldenCase is the async seed-replay corpus schema: a named
// (scenario, seed, schedule, delay) tuple plus the behavior band the run
// must stay inside. The corpus pins the event-driven executor's observable
// behavior — a protocol or queue change that shifts quiescence beyond the
// tolerance band fails here before it reaches an experiment table.
type asyncGoldenCase struct {
	Name     string       `json:"name"`
	Scenario string       `json:"scenario"`
	Seed     uint64       `json:"seed"`
	Schedule sim.Schedule `json:"schedule"`
	Delay    struct {
		Kind      string `json:"kind"`
		Base      Ticks  `json:"base"`
		Spread    Ticks  `json:"spread"`
		SlowOneIn int    `json:"slow_one_in,omitempty"`
	} `json:"delay"`
	ExpectQuiesced    bool `json:"expect_quiesced"`
	ExpectViolations  bool `json:"expect_violations"`
	MaxRecoveryRounds int  `json:"max_recovery_rounds"`
	MaxVRounds        int  `json:"max_vrounds"`
	MinRetries        int  `json:"min_retries"`
}

func (gc *asyncGoldenCase) config() (Config, error) {
	var kind DelayKind
	switch gc.Delay.Kind {
	case "fixed", "":
		kind = Fixed
	case "uniform":
		kind = Uniform
	case "bimodal":
		kind = Bimodal
	default:
		return Config{}, fmt.Errorf("unknown delay kind %q", gc.Delay.Kind)
	}
	return Config{Delay: Delay{
		Kind:      kind,
		Base:      gc.Delay.Base,
		Spread:    gc.Delay.Spread,
		SlowOneIn: gc.Delay.SlowOneIn,
	}}, nil
}

// TestAsyncGoldenSchedules replays the async-*.json corpus shared with the
// synchronous harness's schedule directory; internal/sim's golden test
// skips the async- prefix, this one owns it.
func TestAsyncGoldenSchedules(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "sim", "testdata", "schedules", "async-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("async seed-replay corpus too small: %v", files)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var gc asyncGoldenCase
			if err := json.Unmarshal(raw, &gc); err != nil {
				t.Fatalf("corpus file does not parse: %v", err)
			}
			if want := strings.TrimSuffix(filepath.Base(f), ".json"); gc.Name != want {
				t.Errorf("corpus name %q does not match file %q", gc.Name, want)
			}
			cfg, err := gc.config()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Explore(gc.Scenario, gc.Seed, gc.Schedule, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Quiesced != gc.ExpectQuiesced {
				t.Errorf("quiesced = %v, corpus expects %v", r.Quiesced, gc.ExpectQuiesced)
			}
			if got := len(r.Violations) > 0; got != gc.ExpectViolations {
				t.Errorf("violations present = %v, corpus expects %v (%v)", got, gc.ExpectViolations, r.Violations)
			}
			if gc.ExpectQuiesced {
				if r.RecoveryRounds < 0 || r.RecoveryRounds > gc.MaxRecoveryRounds {
					t.Errorf("rounds-to-restabilize = %d, outside tolerance band [0, %d]",
						r.RecoveryRounds, gc.MaxRecoveryRounds)
				}
				if r.Async.VRounds > gc.MaxVRounds {
					t.Errorf("quiescence at vround %d, outside tolerance band [0, %d]",
						r.Async.VRounds, gc.MaxVRounds)
				}
			}
			if r.Async.Retries < gc.MinRetries {
				t.Errorf("%d retransmissions, corpus demands >= %d — the schedule no longer exercises recovery",
					r.Async.Retries, gc.MinRetries)
			}
			// The corpus doubles as a replay regression: the same file must
			// reproduce the same run bit-for-bit.
			again, err := Explore(gc.Scenario, gc.Seed, gc.Schedule, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if resultFingerprint(r) != resultFingerprint(again) {
				t.Error("corpus replay diverged between two runs")
			}
		})
	}
}
