package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-width-bin empirical histogram.
type Histogram struct {
	Lo, Hi float64 // range covered; samples outside are clamped to edge bins
	Counts []int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi]. bins must be >= 1 and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs >= 1 bin")
	}
	if hi <= lo {
		return nil, errors.New("stats: histogram needs hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// Total returns the number of samples in the histogram.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// CCDF returns the empirical complementary CDF of xs as parallel slices
// (values, P(X >= value)), with values sorted ascending and deduplicated.
func CCDF(xs []float64) (values, probs []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		values = append(values, s[i])
		probs = append(probs, float64(len(s)-i)/n)
		i = j
	}
	return values, probs
}

// FitExponentialMLE returns the maximum-likelihood rate lambda = 1/mean for
// samples assumed exponential. It errors on empty or non-positive-mean input.
func FitExponentialMLE(xs []float64) (lambda float64, err error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := Mean(xs)
	if m <= 0 {
		return 0, errors.New("stats: exponential fit needs positive mean")
	}
	return 1 / m, nil
}

// PowerLawFit is the result of a discrete power-law MLE fit.
type PowerLawFit struct {
	Alpha float64 // fitted exponent
	Xmin  int     // lower cutoff used
	N     int     // number of samples >= Xmin
	KS    float64 // Kolmogorov-Smirnov distance between data and fit
}

// FitPowerLawMLE fits a discrete power law p(k) ~ k^-alpha (truncated at the
// sample maximum) to the integer samples ks by exact maximum likelihood: the
// log-likelihood
//
//	L(alpha) = -n*ln Z(alpha) - alpha * sum(ln k)
//
// with Z(alpha) = sum_{k=xmin}^{kmax} k^-alpha is maximized by ternary search
// over alpha in (1, 12]. Samples below xmin are ignored.
func FitPowerLawMLE(ks []int, xmin int) (PowerLawFit, error) {
	if xmin < 1 {
		xmin = 1
	}
	var (
		n      int
		sumLog float64
		kmax   = xmin
	)
	for _, k := range ks {
		if k < xmin {
			continue
		}
		n++
		sumLog += math.Log(float64(k))
		if k > kmax {
			kmax = k
		}
	}
	if n == 0 {
		return PowerLawFit{}, ErrEmpty
	}
	if sumLog <= float64(n)*math.Log(float64(xmin)) {
		return PowerLawFit{}, errors.New("stats: degenerate sample (all at xmin)")
	}
	logZ := func(alpha float64) float64 {
		var z float64
		for k := xmin; k <= kmax; k++ {
			z += math.Pow(float64(k), -alpha)
		}
		return math.Log(z)
	}
	ll := func(alpha float64) float64 {
		return -float64(n)*logZ(alpha) - alpha*sumLog
	}
	lo, hi := 1.0001, 12.0
	for i := 0; i < 100 && hi-lo > 1e-6; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if ll(m1) < ll(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	fit := PowerLawFit{
		Alpha: (lo + hi) / 2,
		Xmin:  xmin,
		N:     n,
	}
	fit.KS = powerLawKS(ks, fit)
	return fit, nil
}

// FitPowerLawAuto fits a power law choosing xmin from [1, xminMax] to
// minimize the KS distance, the standard Clauset-style selection.
func FitPowerLawAuto(ks []int, xminMax int) (PowerLawFit, error) {
	if xminMax < 1 {
		xminMax = 1
	}
	best := PowerLawFit{KS: math.Inf(1)}
	var ok bool
	for xm := 1; xm <= xminMax; xm++ {
		fit, err := FitPowerLawMLE(ks, xm)
		if err != nil {
			continue
		}
		if fit.N < 10 {
			break // too few samples above this cutoff to keep going
		}
		if fit.KS < best.KS {
			best = fit
			ok = true
		}
	}
	if !ok {
		return PowerLawFit{}, errors.New("stats: no valid power-law fit")
	}
	return best, nil
}

// powerLawKS computes the KS distance between the empirical CDF of samples
// >= fit.Xmin and the fitted discrete power-law CDF (approximated via the
// Hurwitz-zeta normalization truncated at the sample max).
func powerLawKS(ks []int, fit PowerLawFit) float64 {
	var tail []int
	maxK := fit.Xmin
	for _, k := range ks {
		if k >= fit.Xmin {
			tail = append(tail, k)
			if k > maxK {
				maxK = k
			}
		}
	}
	if len(tail) == 0 {
		return 0
	}
	sort.Ints(tail)
	// Normalization constant Z = sum_{k=xmin}^{maxK} k^-alpha, truncated.
	var z float64
	cdf := make([]float64, maxK-fit.Xmin+1)
	for k := fit.Xmin; k <= maxK; k++ {
		z += math.Pow(float64(k), -fit.Alpha)
		cdf[k-fit.Xmin] = z
	}
	for i := range cdf {
		cdf[i] /= z
	}
	// Compare empirical and model CDFs at each distinct sample value; with
	// ties the empirical CDF at k is count(<= k)/n, i.e. the index just past
	// the tie group.
	n := float64(len(tail))
	var ks2 float64
	for i := 0; i < len(tail); {
		j := i
		for j < len(tail) && tail[j] == tail[i] {
			j++
		}
		emp := float64(j) / n
		model := cdf[tail[i]-fit.Xmin]
		if d := math.Abs(emp - model); d > ks2 {
			ks2 = d
		}
		i = j
	}
	return ks2
}
