package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean     float64
		variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"constant", []float64{7, 7, 7, 7}, 7, 0},
		{"mixed", []float64{1, 2, 3, 4, 5}, 3, 2},
		{"negative", []float64{-1, 1}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.variance) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
			if got := StdDev(tt.xs); math.Abs(got-math.Sqrt(tt.variance)) > 1e-12 {
				t.Errorf("StdDev = %v, want %v", got, math.Sqrt(tt.variance))
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Fatal("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Fatal("Max(nil) should error")
	}
	xs := []float64{3, -2, 8, 0}
	mn, err := Min(xs)
	if err != nil || mn != -2 {
		t.Fatalf("Min = %v, %v; want -2", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 8 {
		t.Fatalf("Max = %v, %v; want 8", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("negative quantile should error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile should error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("unexpected summary %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty Summarize should error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 0.5, 1.5, 2.5, 10}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 2} // 10 clamps into last bin
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("hi <= lo should error")
	}
}

func TestCCDF(t *testing.T) {
	vals, probs := CCDF([]float64{1, 1, 2, 3})
	wantVals := []float64{1, 2, 3}
	wantProbs := []float64{1, 0.5, 0.25}
	if len(vals) != len(wantVals) {
		t.Fatalf("got %d values, want %d", len(vals), len(wantVals))
	}
	for i := range vals {
		if vals[i] != wantVals[i] || math.Abs(probs[i]-wantProbs[i]) > 1e-12 {
			t.Errorf("point %d = (%v,%v), want (%v,%v)", i, vals[i], probs[i], wantVals[i], wantProbs[i])
		}
	}
	if v, p := CCDF(nil); v != nil || p != nil {
		t.Error("empty CCDF should return nils")
	}
}

func TestExponentialDrawAndFit(t *testing.T) {
	r := NewRand(1)
	const lambda = 2.5
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Exponential(r, lambda)
	}
	got, err := FitExponentialMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-lambda)/lambda > 0.05 {
		t.Errorf("fitted lambda = %v, want ~%v", got, lambda)
	}
	if _, err := FitExponentialMLE(nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(2)
	const xmin, alpha = 1.0, 2.5
	n := 20000
	var above2 int
	for i := 0; i < n; i++ {
		x := Pareto(r, xmin, alpha)
		if x < xmin {
			t.Fatalf("Pareto draw %v below xmin", x)
		}
		if x >= 2 {
			above2++
		}
	}
	// P(X >= 2) = (2/xmin)^-(alpha-1) = 2^-1.5 ~ 0.3536.
	p := float64(above2) / float64(n)
	if math.Abs(p-math.Pow(2, -(alpha-1))) > 0.02 {
		t.Errorf("tail P(X>=2) = %v, want ~%v", p, math.Pow(2, -(alpha-1)))
	}
}

func TestPowerLawIntsAndFit(t *testing.T) {
	r := NewRand(3)
	const alpha = 2.5
	ks := PowerLawInts(r, 30000, 1, 100000, alpha)
	for _, k := range ks {
		if k < 1 {
			t.Fatalf("PowerLawInts produced %d < xmin", k)
		}
	}
	fit, err := FitPowerLawMLE(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.15 {
		t.Errorf("fitted alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.KS > 0.05 {
		t.Errorf("KS = %v, want small for true power-law data", fit.KS)
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	r := NewRand(4)
	ks := PowerLawInts(r, 20000, 3, 100000, 2.2)
	// Pollute with sub-xmin noise the auto fit should cut away.
	for i := 0; i < 2000; i++ {
		ks = append(ks, 1+r.Intn(2))
	}
	fit, err := FitPowerLawAuto(ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Xmin < 2 {
		t.Errorf("auto xmin = %d, expected cutoff above polluted region", fit.Xmin)
	}
	if math.Abs(fit.Alpha-2.2) > 0.25 {
		t.Errorf("fitted alpha = %v, want ~2.2", fit.Alpha)
	}
	if _, err := FitPowerLawAuto(nil, 5); err == nil {
		t.Error("empty auto fit should error")
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if _, err := FitPowerLawMLE([]int{2, 2, 2}, 2); err == nil {
		t.Error("all-at-xmin sample should error")
	}
	if _, err := FitPowerLawMLE([]int{1, 2, 3}, 10); err == nil {
		t.Error("no samples above xmin should error")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		norm := func(q float64) float64 { return math.Abs(math.Mod(q, 1)) }
		a, b := norm(q1), norm(q2)
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return va <= vb+1e-9 && va >= mn-1e-9 && vb <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CCDF probabilities are non-increasing and start at 1.
func TestCCDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		vals, probs := CCDF(xs)
		if len(vals) == 0 || probs[0] != 1 {
			return false
		}
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		for i := 1; i < len(probs); i++ {
			if probs[i] > probs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
