package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n), or 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	md, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Median: md,
		Max:    mx,
	}, nil
}

// Ints converts an int slice to float64 for use with the summary helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
