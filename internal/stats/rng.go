// Package stats provides deterministic randomness plumbing, summary
// statistics, empirical distributions, and maximum-likelihood fits used
// across the structura experiment suite.
//
// Every randomized component in the repository takes an explicit *rand.Rand
// (or a seed that is turned into one via NewRand) so that experiments are
// reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic PRNG for the given seed.
//
// All structura packages accept a *rand.Rand rather than consulting global
// randomness, so a single seed pins down an entire experiment.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exponential draws from an exponential distribution with rate lambda
// (mean 1/lambda). lambda must be > 0.
func Exponential(r *rand.Rand, lambda float64) float64 {
	return r.ExpFloat64() / lambda
}

// Pareto draws from a continuous Pareto distribution with minimum xmin and
// exponent alpha > 1 (density ~ x^-alpha for x >= xmin).
func Pareto(r *rand.Rand, xmin, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin * math.Pow(1-u, -1/(alpha-1))
}

// PowerLawInts draws n integers k in [xmin, kmax] with P(k) proportional to
// k^-alpha, using the stdlib Zipf sampler (which is exact for this pmf).
func PowerLawInts(r *rand.Rand, n, xmin, kmax int, alpha float64) []int {
	if xmin < 1 {
		xmin = 1
	}
	if kmax < xmin {
		kmax = xmin
	}
	// rand.Zipf draws j in [0, imax] with P(j) ~ (v+j)^-s; with v = xmin the
	// shifted value xmin+j follows P(x) ~ x^-alpha on [xmin, xmin+imax].
	z := rand.NewZipf(r, alpha, float64(xmin), uint64(kmax-xmin))
	out := make([]int, n)
	for i := range out {
		out[i] = xmin + int(z.Uint64())
	}
	return out
}
