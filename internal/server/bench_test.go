package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/heal"
	"structura/internal/stats"
)

// BenchmarkServeQPS measures end-to-end serving throughput: a 100k-node
// sparse ER graph (avg degree ~10) served under the full query mix while a
// churn goroutine keeps mutation batches flowing through the writer — the
// paper's socially-rich-and-dynamic regime, scaled. One b.N iteration is a
// complete load run, so run with -benchtime 1x; the headline metric is the
// queries/sec custom unit.
func BenchmarkServeQPS(b *testing.B) {
	const n = 100_000
	g := gen.SparseErdosRenyi(stats.NewRand(1), n, 10.0/float64(n-1))
	srv, err := New(g, Config{
		SkipCDS:      true, // the MIS→CDS merge does not scale to 100k nodes
		RepairBudget: heal.Budget{MaxTouched: 20_000},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Churn: ~1% of nodes see an edge flip per second of load. Each batch
	// adds a clutch of fresh edges and removes them again a batch later, so
	// the graph's density does not drift across iterations.
	churnCtx, stopChurn := context.WithCancel(context.Background())
	defer stopChurn()
	go func() {
		r := stats.NewRand(7)
		var prev []Mutation
		for tick := 0; ; tick++ {
			select {
			case <-churnCtx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			ops := make([]Mutation, 0, 50)
			for _, m := range prev {
				ops = append(ops, Mutation{Op: "remove", U: m.U, V: m.V})
			}
			prev = prev[:0]
			for i := 0; i < 25; i++ {
				u, v := r.Intn(n), r.Intn(n)
				if u == v {
					continue
				}
				m := Mutation{Op: "add", U: u, V: v}
				ops = append(ops, m)
				prev = append(prev, m)
			}
			body, _ := json.Marshal(mutateRequest{Ops: ops})
			req := httptest.NewRequest(http.MethodPost, "/mutate", bytes.NewReader(body))
			srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
		}
	}()

	lg := &LoadGen{Handler: srv.Handler(), N: n, Seed: 42, KhopK: 2}
	b.ResetTimer()
	var last *LoadStats
	for i := 0; i < b.N; i++ {
		st, err := lg.Run(250_000)
		if err != nil {
			b.Fatal(err)
		}
		if st.Errors > 0 {
			b.Fatalf("load run saw %d error responses", st.Errors)
		}
		last = st
	}
	b.StopTimer()
	b.ReportMetric(last.QPS, "queries/sec")
	b.ReportMetric(float64(last.P99.Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(srv.Epoch().Seq), "epochs")
	if last.QPS < 1 {
		b.Fatal("implausible QPS")
	}
}
