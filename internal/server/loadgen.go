package server

import (
	"errors"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// LoadGen drives a Server's handler with an in-process query mix — no
// sockets, so the measured throughput is the serving stack itself (routing
// walks, k-hop BFS, JSON encoding) rather than the kernel's TCP ceiling.
// The mix mirrors a structure-service workload: mostly point routing and
// label lookups, some neighborhood expansion, a trickle of top-k scans.
type LoadGen struct {
	Handler http.Handler
	N       int    // node-ID space to draw from
	Seed    uint64 // deterministic per-worker query streams
	Workers int    // default GOMAXPROCS
	KhopK   int    // k used for /khop queries, default 2
	CDS     bool   // include /cds/member queries (needs a maintained backbone)
}

// LoadStats summarizes one load run.
type LoadStats struct {
	Queries uint64
	Errors  uint64 // responses with status >= 400 other than 429
	Shed    uint64 // 429 responses
	Elapsed time.Duration
	QPS     float64
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// nullWriter is the cheapest possible ResponseWriter: it discards the body
// and records only the status.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 1)
	}
	return w.h
}
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullWriter) WriteHeader(code int)        { w.status = code }

// splitmix64 is the per-query hash: deterministic, stateless, and cheap, so
// worker streams don't contend on a shared rng.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run fires total queries split across the workers and blocks until all
// complete.
func (lg *LoadGen) Run(total int) (*LoadStats, error) {
	if lg.Handler == nil {
		return nil, errors.New("server: loadgen has no handler")
	}
	if lg.N <= 0 {
		return nil, errors.New("server: loadgen needs a positive node space")
	}
	workers := lg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := lg.KhopK
	if k <= 0 {
		k = 2
	}
	type workerStats struct {
		queries, errors, shed uint64
		lat                   histogram
	}
	stats := make([]workerStats, workers)
	per := total / workers
	start := time.Now()
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		n := per
		if wid == workers-1 {
			n = total - per*(workers-1)
		}
		wg.Add(1)
		go func(wid, n int) {
			defer wg.Done()
			st := &stats[wid]
			w := &nullWriter{}
			// One request object per worker, re-pointed at each target: the
			// per-query cost is the handler, not request construction.
			u := &url.URL{}
			req := &http.Request{
				Method: http.MethodGet, URL: u, Host: "loadgen.local",
				Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
				RemoteAddr: "127.0.0.1:0", RequestURI: "/",
			}
			kStr := "k=" + strconv.Itoa(k)
			buf := make([]byte, 0, 32)
			for i := 0; i < n; i++ {
				h := splitmix64(lg.Seed ^ uint64(wid)<<32 ^ uint64(i))
				node := int64(h % uint64(lg.N))
				switch mix := (h >> 32) % 100; {
				case mix < 40:
					u.Path = "/route"
					buf = strconv.AppendInt(append(buf[:0], "from="...), node, 10)
				case mix < 65:
					u.Path = "/labels"
					buf = strconv.AppendInt(append(buf[:0], "node="...), node, 10)
				case mix < 80:
					u.Path = "/khop"
					buf = strconv.AppendInt(append(buf[:0], "node="...), node, 10)
					buf = append(append(buf, '&'), kStr...)
				case mix < 90:
					u.Path = "/centrality/topk"
					buf = strconv.AppendInt(append(buf[:0], "k="...), 1+int64(h>>40)%16, 10)
				default:
					if lg.CDS {
						u.Path = "/cds/member"
					} else {
						u.Path = "/labels"
					}
					buf = strconv.AppendInt(append(buf[:0], "node="...), node, 10)
				}
				u.RawQuery = string(buf)
				w.status = http.StatusOK
				t0 := time.Now()
				lg.Handler.ServeHTTP(w, req)
				st.lat.observe(time.Since(t0))
				st.queries++
				switch {
				case w.status == http.StatusTooManyRequests:
					st.shed++
				case w.status >= 400:
					st.errors++
				}
			}
		}(wid, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &LoadStats{Elapsed: elapsed}
	merged := &histogram{}
	for i := range stats {
		out.Queries += stats[i].queries
		out.Errors += stats[i].errors
		out.Shed += stats[i].shed
		merged.count.Add(stats[i].lat.count.Load())
		for b := 0; b < latBuckets; b++ {
			merged.buckets[b].Add(stats[i].lat.buckets[b].Load())
		}
		if m := stats[i].lat.maxNs.Load(); m > merged.maxNs.Load() {
			merged.maxNs.Store(m)
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.QPS = float64(out.Queries) / secs
	}
	out.P50 = time.Duration(merged.quantile(0.50))
	out.P99 = time.Duration(merged.quantile(0.99))
	out.Max = time.Duration(merged.maxNs.Load())
	return out, nil
}
