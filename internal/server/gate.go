package server

import (
	"net/http"
	"sync/atomic"
)

// Gate fronts a server that is still recovering its durable state. Until
// SetReady hands it the real handler, every request — including /healthz —
// answers 503, so load balancers keep traffic away while the write-ahead
// log replays. The listener can therefore bind before recovery starts: the
// port is up, the service is honest about not being ready.
type Gate struct {
	inner atomic.Pointer[http.Handler]
}

// NewGate returns a gate with no handler: all requests 503 until SetReady.
func NewGate() *Gate { return &Gate{} }

// SetReady installs h and opens the gate. Safe to call once, from any
// goroutine; requests racing the swap get either the 503 or the handler.
func (g *Gate) SetReady(h http.Handler) { g.inner.Store(&h) }

// Ready reports whether the gate has a handler installed.
func (g *Gate) Ready() bool { return g.inner.Load() != nil }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.inner.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "recovering: durable state replay in progress")
}
