package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"structura/internal/heal"
	"structura/internal/wal"
)

func metricsSnap(t *testing.T, h http.Handler) MetricsSnapshot {
	t.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap MetricsSnapshot
	if err := json.NewDecoder(rw.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return snap
}

// TestServerWarmStartFromLabels covers the durable-epoch restart: a server
// journals its label epochs alongside the topology, so a clean restart
// recovers them, warm-starts every engine without a recompute, and serves
// the identical state.
func TestServerWarmStartFromLabels(t *testing.T) {
	mem := wal.NewMemFS()
	s, l := journaledServer(t, mem, Config{Dest: 0})

	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":1,"v":7},{"op":"add","u":2,"v":9}]}`)
	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"remove","u":1,"v":7},{"op":"add","u":3,"v":30}]}`)
	waitQuiesced(t, s)
	served := wal.CSRHash(s.Epoch().CSR)
	wantDist, wantNext := s.routeSrc.RouteLabels()

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	l2, rec, err := wal.Open("store", wal.Options{FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Labels == nil {
		t.Fatal("recovery carried no label epoch")
	}
	if rec.Labels.Seq != rec.Seq {
		t.Fatalf("label epoch at seq %d, topology at %d — clean shutdown should agree", rec.Labels.Seq, rec.Seq)
	}
	if len(rec.Dirty) != 0 {
		t.Fatalf("clean shutdown left %d dirty node(s): %v", len(rec.Dirty), rec.Dirty)
	}

	s2, err := New(l2.Graph(), Config{Dest: 0, SkipCDS: true, WAL: l2, Recovered: &rec})
	if err != nil {
		t.Fatalf("server after recovery: %v", err)
	}
	defer s2.Shutdown(context.Background())

	if got := wal.CSRHash(s2.Epoch().CSR); got != served {
		t.Fatalf("recovered server serves hash %x, want %x", got, served)
	}
	gotDist, gotNext := s2.routeSrc.RouteLabels()
	for v := range wantDist {
		if wantDist[v] != gotDist[v] || wantNext[v] != gotNext[v] {
			t.Fatalf("route label %d diverged after warm start: (%v,%d) vs (%v,%d)",
				v, wantDist[v], wantNext[v], gotDist[v], gotNext[v])
		}
	}
	// The warm start is trusted, not swept — audit it here instead.
	for _, sup := range s2.supervisors() {
		if v := sup.Sweep(); len(v) != 0 {
			t.Fatalf("post-warm-start sweep found %d violation(s): %v", len(v), v[0])
		}
	}

	snap := metricsSnap(t, s2.Handler())
	if snap.WAL == nil || !snap.WAL.WarmStart {
		t.Fatalf("metrics did not report a warm start: %+v", snap.WAL)
	}
	if snap.WAL.ReadyNs <= 0 || snap.WAL.RecoveryNs <= 0 {
		t.Fatalf("ready_ns %d / recovery_ns %d must both be positive", snap.WAL.ReadyNs, snap.WAL.RecoveryNs)
	}
	if snap.WAL.ReadyNs < snap.WAL.RecoveryNs {
		t.Fatalf("ready_ns %d < recovery_ns %d — ready must include recovery", snap.WAL.ReadyNs, snap.WAL.RecoveryNs)
	}
	if snap.WAL.RecoveryStanding != 0 {
		t.Fatalf("warm-start heal left %d standing violation(s)", snap.WAL.RecoveryStanding)
	}
}

// TestJournalBeforePublishCrash pins the ordering contract: the topology
// batch is journaled before the label epoch, so a crash between the two
// leaves durable labels strictly behind the durable topology — never ahead.
// The recovered server warm-starts from the lagging epoch, heals the dirty
// set recovery reports, and converges to the same labels a cold rebuild
// computes over the recovered topology.
func TestJournalBeforePublishCrash(t *testing.T) {
	mem := wal.NewMemFS()
	fsys := wal.NewFaultFS(mem, 7, -1)
	s, l := journaledServerOn(t, fsys, Config{Dest: 0})

	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":1,"v":7}]}`)
	waitQuiesced(t, s)
	labelSeqBefore := l.Metrics().LabelSeq

	// Fail the write after the topology append + fsync: the label epoch for
	// this batch never becomes durable, the writer aborts without
	// publishing — the crash point satellite (b) names.
	fsys.ShortWriteAt(fsys.Ops() + 2)
	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":2,"v":9}]}`)
	waitQuiesced(t, s)
	if s.met.walFailed.Load() != 1 {
		t.Fatalf("walFailed = %d, want 1 (label append must have failed)", s.met.walFailed.Load())
	}
	_ = s.Shutdown(context.Background())

	// Crash: only synced bytes survive.
	img := mem.CrashImage(1)
	l2, rec, err := wal.Open("store", wal.Options{FS: img})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()

	if rec.Labels == nil {
		t.Fatal("durable label epoch lost entirely")
	}
	if rec.Labels.Seq > rec.Seq {
		t.Fatalf("recovered labels at seq %d are AHEAD of durable topology seq %d", rec.Labels.Seq, rec.Seq)
	}
	if rec.Labels.Seq != labelSeqBefore || rec.Labels.Seq >= rec.Seq {
		t.Fatalf("labels at seq %d, topology at %d — want the pre-crash epoch %d strictly behind",
			rec.Labels.Seq, rec.Seq, labelSeqBefore)
	}
	if len(rec.Dirty) == 0 {
		t.Fatal("label lag reported no dirty nodes")
	}

	s2, err := New(l2.Graph(), Config{Dest: 0, SkipCDS: true, WAL: l2, Recovered: &rec})
	if err != nil {
		t.Fatalf("server after crash recovery: %v", err)
	}
	defer s2.Shutdown(context.Background())

	snap := metricsSnap(t, s2.Handler())
	if snap.WAL == nil || !snap.WAL.WarmStart {
		t.Fatal("crash recovery did not warm-start")
	}
	if snap.WAL.DirtyHealed == 0 {
		t.Fatal("warm start healed no dirty nodes despite the label lag")
	}
	if snap.WAL.RecoveryStanding != 0 {
		t.Fatalf("warm-start heal left %d standing violation(s)", snap.WAL.RecoveryStanding)
	}

	// The served labels match a cold rebuild over the recovered topology:
	// the recovered server never serves labels newer (or other) than what
	// the durable topology implies.
	cold, err := heal.NewDistVecEngineOver(l2.Graph(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _ := cold.(interface{ RouteLabels() ([]float64, []int) }).RouteLabels()
	gotDist, _ := s2.routeSrc.RouteLabels()
	for v := range wantDist {
		if wantDist[v] != gotDist[v] {
			t.Fatalf("healed dist[%d] = %v, cold rebuild = %v", v, gotDist[v], wantDist[v])
		}
	}
	for _, sup := range s2.supervisors() {
		if v := sup.Sweep(); len(v) != 0 {
			t.Fatalf("post-heal sweep found %d violation(s): %v", len(v), v[0])
		}
	}
}
