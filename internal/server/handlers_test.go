package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"structura/internal/graph"
)

// fixtureGraph is the deterministic 6-node graph the golden tests pin:
//
//	0—1—2—3—4—5  plus the chord 1—3
//
// Connected (so the CDS backbone exists), with hand-checkable labels:
// BFS from 0 gives dist {0,1,2,2,3,4}; degrees are {1,3,2,3,2,1}.
func fixtureGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func newFixtureServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(fixtureGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

func do(h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHandlerGoldens pins every endpoint's exact response bytes on the
// fixture graph: valid queries, out-of-range nodes, malformed parameters and
// bodies, and method misuse. A serialization change that breaks clients
// breaks these first.
func TestHandlerGoldens(t *testing.T) {
	srv := newFixtureServer(t, Config{Dest: 0})
	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantBody   string
	}{
		{"route far node", "GET", "/route?from=5", "",
			200, `{"epoch":1,"from":5,"dest":0,"dist":4,"path":[5,4,3,1,0]}`},
		{"route at dest", "GET", "/route?from=0", "",
			200, `{"epoch":1,"from":0,"dest":0,"dist":0,"path":[0]}`},
		{"route out of range", "GET", "/route?from=99", "",
			400, `{"error":"node 99 out of range [0,6)"}`},
		{"route missing param", "GET", "/route", "",
			400, `{"error":"missing \"from\" parameter"}`},
		{"route non-integer", "GET", "/route?from=abc", "",
			400, `{"error":"\"from\" must be an integer"}`},
		{"khop two hops", "GET", "/khop?node=1&k=2", "",
			200, `{"epoch":1,"node":1,"k":2,"count":4,"nodes":[0,2,3,4]}`},
		{"khop default k", "GET", "/khop?node=0", "",
			200, `{"epoch":1,"node":0,"k":1,"count":1,"nodes":[1]}`},
		{"khop k over cap", "GET", "/khop?node=1&k=9", "",
			400, `{"error":"k 9 exceeds the configured cap 4"}`},
		{"khop k malformed", "GET", "/khop?node=1&k=-2", "",
			400, `{"error":"\"k\" must be a positive integer"}`},
		{"topk", "GET", "/centrality/topk?k=3", "",
			200, `{"epoch":1,"k":3,"nodes":[{"node":1,"score":3},{"node":3,"score":3},{"node":2,"score":2}]}`},
		{"topk clamped to n", "GET", "/centrality/topk?k=100", "",
			200, `{"epoch":1,"k":6,"nodes":[{"node":1,"score":3},{"node":3,"score":3},{"node":2,"score":2},{"node":4,"score":2},{"node":0,"score":1},{"node":5,"score":1}]}`},
		{"cds member", "GET", "/cds/member?node=1", "",
			200, `{"epoch":1,"node":1,"member":true,"size":5}`},
		{"cds non-member", "GET", "/cds/member?node=5", "",
			200, `{"epoch":1,"node":5,"member":false,"size":5}`},
		{"labels node", "GET", "/labels?node=3", "",
			200, `{"epoch":1,"node":3,"degree":3,"route_dist":2,"route_next":1,"mis":false,"cds":true}`},
		{"labels summary", "GET", "/labels", "",
			200, `{"epoch":1,"nodes":6,"edges":6,"dest":0,"mis_size":3,"cds_size":5,"unreachable":0}`},
		{"healthz", "GET", "/healthz", "",
			200, `{"status":"ok","epoch":1}`},
		{"mutate wrong method", "GET", "/mutate", "",
			405, `{"error":"mutate requires POST"}`},
		{"mutate malformed body", "POST", "/mutate", `{"ops": not json`,
			400, `{"error":"malformed body: invalid character 'o' in literal null (expecting 'u')"}`},
		{"mutate empty ops", "POST", "/mutate", `{"ops":[]}`,
			400, `{"error":"empty ops"}`},
		{"mutate bad op", "POST", "/mutate", `{"ops":[{"op":"toggle","u":0,"v":1}]}`,
			400, `{"error":"op \"toggle\" must be \"add\" or \"remove\""}`},
		{"mutate self-loop", "POST", "/mutate", `{"ops":[{"op":"add","u":2,"v":2}]}`,
			400, `{"error":"edge (2,2) out of range or self-loop"}`},
		{"mutate out of range", "POST", "/mutate", `{"ops":[{"op":"add","u":0,"v":42}]}`,
			400, `{"error":"edge (0,42) out of range or self-loop"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(srv.Handler(), tc.method, tc.target, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != tc.wantBody {
				t.Fatalf("body:\n got %s\nwant %s", got, tc.wantBody)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
		})
	}
}

// TestCDSMemberAbsentBackbone: with SkipCDS the backbone endpoint answers
// 404 and the labels drop their cds field.
func TestCDSMemberAbsentBackbone(t *testing.T) {
	srv := newFixtureServer(t, Config{Dest: 0, SkipCDS: true})
	rec := do(srv.Handler(), "GET", "/cds/member?node=1", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	want := `{"error":"cds backbone not maintained: disabled by config"}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
	rec = do(srv.Handler(), "GET", "/labels?node=3", "")
	want = `{"epoch":1,"node":3,"degree":3,"route_dist":2,"route_next":1,"mis":false}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
	rec = do(srv.Handler(), "GET", "/labels", "")
	want = `{"epoch":1,"nodes":6,"edges":6,"dest":0,"mis_size":3,"cds_size":-1,"unreachable":0}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
}

// TestMutateAccepted: a valid batch is acknowledged with 202 and eventually
// drained into a new epoch.
func TestMutateAccepted(t *testing.T) {
	srv := newFixtureServer(t, Config{Dest: 0})
	rec := do(srv.Handler(), "POST", "/mutate", `{"ops":[{"op":"add","u":0,"v":5},{"op":"remove","u":1,"v":3}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (body %q)", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("mutations never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
	ep := srv.Epoch()
	if ep.Seq < 2 {
		t.Fatalf("epoch seq = %d, want >= 2 after a mutation batch", ep.Seq)
	}
	// 0—5 now exists: node 5 is one hop from the destination.
	rec = do(srv.Handler(), "GET", "/route?from=5", "")
	want := `{"epoch":` + strconv.FormatUint(ep.Seq, 10) + `,"from":5,"dest":0,"dist":1,"path":[5,0]}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
}

// TestShedAt429: with the semaphore held, query endpoints shed instantly
// with 429 while /metrics and /healthz stay reachable.
func TestShedAt429(t *testing.T) {
	srv := newFixtureServer(t, Config{Dest: 0, MaxInFlight: 1})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	rec := do(srv.Handler(), "GET", "/route?from=1", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	want := `{"error":"overloaded, retry later"}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
	if rec = do(srv.Handler(), "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz sheds under load: status %d", rec.Code)
	}
	if rec = do(srv.Handler(), "GET", "/metrics", ""); rec.Code != http.StatusOK {
		t.Fatalf("metrics sheds under load: status %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Endpoints["/route"].Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.Endpoints["/route"].Shed)
	}
}

// TestMutateQueueFull429: with the writer parked mid-batch and the queue
// full, further mutations shed with 429 and an accurate accepted count.
func TestMutateQueueFull429(t *testing.T) {
	g := fixtureGraph(t)
	srv, err := New(g, Config{Dest: 0, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	// Park the writer inside its current batch so nothing drains.
	parked := make(chan struct{})
	srv.testHookBatch = func() { <-parked }
	defer close(parked)
	rec := do(srv.Handler(), "POST", "/mutate", `{"ops":[{"op":"add","u":0,"v":2}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first mutate: status %d", rec.Code)
	}
	// Wait for the writer to pick up the first op and park.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.mutCh) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first op")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue (capacity 1), then overflow it in one batch.
	rec = do(srv.Handler(), "POST", "/mutate", `{"ops":[{"op":"add","u":0,"v":3},{"op":"add","u":0,"v":4}]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow mutate: status %d, want 429", rec.Code)
	}
	want := `{"accepted":1,"queued":1}`
	if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
		t.Fatalf("body = %s, want %s", got, want)
	}
}

// TestPostShutdown503: after Shutdown every endpoint, including the
// observability ones, answers 503 with a stable body.
func TestPostShutdown503(t *testing.T) {
	srv, err := New(fixtureGraph(t), Config{Dest: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{
		"/route?from=1", "/khop?node=1", "/centrality/topk", "/cds/member?node=0",
		"/labels", "/mutate", "/metrics", "/healthz",
	} {
		rec := do(srv.Handler(), "GET", target, "")
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s after shutdown: status %d, want 503", target, rec.Code)
		}
		want := `{"error":"server shutting down"}`
		if got := strings.TrimSuffix(rec.Body.String(), "\n"); got != want {
			t.Fatalf("%s body = %s, want %s", target, got, want)
		}
	}
}
