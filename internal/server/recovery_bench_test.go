package server

import (
	"context"
	"testing"

	"structura/internal/gen"
	"structura/internal/stats"
	"structura/internal/wal"
)

// buildRecoveryStore journals a 100k-node store with a short committed log
// tail. With labels, a full label epoch covering the committed seq is
// journaled too (by running the real server once), so a reopen warm-starts;
// without, recovery must recompute every structure from the topology.
func buildRecoveryStore(b *testing.B, withLabels bool) *wal.MemFS {
	b.Helper()
	const n = 100_000
	fs := wal.NewMemFS()
	g := gen.SparseErdosRenyi(stats.NewRand(7), n, 8.0/float64(n-1))
	l, err := wal.Create("store", g, wal.Options{FS: fs, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		recs := []wal.Record{{Type: wal.TAddEdge, U: int32(i), V: int32(n/2 + i), Weight: 1}}
		if _, err := l.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	if withLabels {
		srv, err := New(l.Graph(), Config{SkipCDS: true, WAL: l})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkRecoveryReady prices crash-recovery-to-ready on the 100k-node ER
// graph: cold-recompute replays topology and rebuilds every label from
// scratch (plus the full invariant sweep); label-replay recovers the durable
// label epoch and warm-starts the engines, healing only the dirty tail. The
// label-replay leg is the availability claim — it must be ≥10× cheaper.
func BenchmarkRecoveryReady(b *testing.B) {
	for _, leg := range []struct {
		name       string
		withLabels bool
	}{
		{"cold-recompute", false},
		{"label-replay", true},
	} {
		b.Run(leg.name, func(b *testing.B) {
			base := buildRecoveryStore(b, leg.withLabels)
			var readySum, labelSum int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs := base.CrashImage(1) // pristine store copy per iteration
				b.StartTimer()
				l, rec, err := wal.Open("store", wal.Options{FS: fs})
				if err != nil {
					b.Fatal(err)
				}
				srv, err := New(l.Graph(), Config{SkipCDS: true, WAL: l, Recovered: &rec})
				if err != nil {
					b.Fatal(err)
				}
				readyNs, labelNs, warm, _ := srv.ReadySummary()
				if warm != leg.withLabels {
					b.Fatalf("warm-start=%v, want %v", warm, leg.withLabels)
				}
				readySum += readyNs
				labelSum += labelNs
				b.StopTimer()
				if err := srv.Shutdown(context.Background()); err != nil {
					b.Fatal(err)
				}
				l.Close()
				b.StartTimer()
			}
			// ready-ns is the total boot wall time; label-ns isolates the
			// label acquisition phase (recompute+sweep vs seed+heal-dirty)
			// that the durable label epoch exists to shorten — the ≥10×
			// replay-vs-recompute claim is the label-ns ratio, since both
			// legs pay the same snapshot decode and epoch publish costs.
			b.ReportMetric(float64(readySum)/float64(b.N), "ready-ns")
			b.ReportMetric(float64(labelSum)/float64(b.N), "label-ns")
		})
	}
}
