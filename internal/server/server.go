// Package server is the serving layer: a resident process that owns a graph
// and answers structure queries — routing next-hops, k-hop neighborhoods,
// centrality top-k, backbone membership — over HTTP while mutation batches
// stream in. Reads are lock-free: every published state is an immutable
// Epoch behind an atomic.Pointer (RCU-style), loaded once per request.
// Writes funnel through a single writer goroutine that drains the mutation
// queue in batches, heals the labels through heal.Supervisor (localized
// repair first, full recompute when the budget is exhausted), and swaps in
// the next epoch. Readers never block writers and writers never block
// readers; old epochs are garbage-collected once the last in-flight request
// drops them.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"structura/internal/graph"
	"structura/internal/heal"
	"structura/internal/sim"
	"structura/internal/wal"
)

// Mutation is one client-submitted edge change.
type Mutation struct {
	Op string `json:"op"` // "add" | "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// Config tunes a Server. The zero value is usable; unset limits get
// defaults at construction.
type Config struct {
	// Dest is the destination node the route labels point toward.
	Dest int

	// SkipCDS disables the CDS backbone engine entirely. The MIS→CDS
	// construction requires a connected graph and does not scale to very
	// large supports, so high-throughput deployments opt out; /cds/member
	// then answers 404.
	SkipCDS bool

	// MaxInFlight caps concurrently-executing queries; excess requests are
	// shed with 429 rather than queued. Default 256.
	MaxInFlight int

	// QueueDepth is the mutation queue capacity; a full queue sheds
	// /mutate posts with 429. Default 4096.
	QueueDepth int

	// BatchMax bounds how many queued mutations the writer folds into one
	// epoch. Default 256.
	BatchMax int

	// MaxK caps the k accepted by /khop. Default 4.
	MaxK int

	// RepairBudget bounds each localized repair before the supervisor
	// escalates to a full recompute. Zero = unbounded repair.
	RepairBudget heal.Budget

	// WAL, when set, journals every mutation batch before it is healed or
	// published: a batch reaches the write-ahead log (fsynced per the log's
	// policy) first, so a crash at any later point replays it on restart.
	// A journaling error aborts the batch and stops the writer — the server
	// keeps serving the last published epoch, but no further epoch may be
	// built on state the log could not record. The caller owns the log's
	// lifecycle (Open/Create before New, Close after Shutdown).
	WAL *wal.Log

	// Recovered, when set, is the recovery report of the wal.Open that
	// produced the graph this server was built over. New audits the freshly
	// constructed structures with a full invariant sweep and exposes the
	// report plus the sweep's standing-violation count on /metrics.
	Recovered *wal.Recovery

	// OnPublish, when set, observes every epoch right before it is
	// published. Test hook for the consistency properties.
	OnPublish func(*Epoch)
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.MaxK <= 0 {
		c.MaxK = 4
	}
}

// endpointNames fixes the /metrics schema.
var endpointNames = []string{
	"/route", "/khop", "/centrality/topk", "/cds/member", "/labels",
	"/mutate", "/metrics", "/healthz",
}

// Server owns a graph and serves structure queries against RCU epochs.
type Server struct {
	cfg Config
	n   int

	epoch atomic.Pointer[Epoch]
	mux   *http.ServeMux
	sem   chan struct{} // concurrency-limit semaphore, non-blocking acquire
	mutCh chan Mutation

	// One supervisor per maintained structure, each over its own clone of
	// the topology. All three apply identical event batches; acceptance is
	// purely topological (self-loop / duplicate-add / missing-remove), so
	// the clones stay in lockstep.
	dv, mis, cds *heal.Supervisor
	dvEng        heal.Engine

	routeSrc interface{ RouteLabels() ([]float64, []int) }
	misSrc   interface{ MISLabels() []bool }
	cdsSrc   interface{ CDSMembers() []int } // nil: backbone not maintained
	cdsErr   string                          // why, when absent

	met *metrics

	ctx        context.Context
	cancel     context.CancelFunc
	writerDone chan struct{}
	inflight   sync.WaitGroup
	closed     atomic.Bool

	accepted atomic.Uint64 // mutations enqueued
	applied  atomic.Uint64 // mutations drained by the writer (published or dropped)

	khopPool sync.Pool // *khopScratch

	// testHookBatch, when set, runs after the writer drains a batch and
	// before it heals/publishes — the epoch-swap races in tests hang here.
	testHookBatch func()
}

type khopScratch struct {
	dist  []int32
	queue []int32
}

// New builds a Server over g (cloned per engine; the caller's graph is not
// retained), heals nothing — the initial labels come from scratch
// construction — and publishes epoch 1. The writer goroutine starts
// immediately; call Shutdown to stop it.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("server: graph must have at least one node")
	}
	if g.Directed() {
		return nil, errors.New("server: graph must be undirected")
	}
	if cfg.Dest < 0 || cfg.Dest >= g.N() {
		return nil, fmt.Errorf("server: dest %d out of range [0,%d)", cfg.Dest, g.N())
	}
	cfg.setDefaults()

	s := &Server{
		cfg:        cfg,
		n:          g.N(),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		mutCh:      make(chan Mutation, cfg.QueueDepth),
		met:        newMetrics(endpointNames),
		writerDone: make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	dvEng, err := heal.NewDistVecEngineOver(g.Clone(), cfg.Dest)
	if err != nil {
		s.cancel()
		return nil, fmt.Errorf("server: distvec engine: %w", err)
	}
	misEng, err := heal.NewMISEngineOver(g.Clone())
	if err != nil {
		s.cancel()
		return nil, fmt.Errorf("server: mis engine: %w", err)
	}
	s.dvEng = dvEng
	s.routeSrc = dvEng.(interface{ RouteLabels() ([]float64, []int) })
	s.misSrc = misEng.(interface{ MISLabels() []bool })
	s.dv = &heal.Supervisor{Engine: dvEng, Budget: cfg.RepairBudget, Ctx: s.ctx}
	s.mis = &heal.Supervisor{Engine: misEng, Budget: cfg.RepairBudget, Ctx: s.ctx}

	if cfg.SkipCDS {
		s.cdsErr = "disabled by config"
	} else if cdsEng, cerr := heal.NewCDSEngineOver(g.Clone()); cerr != nil {
		// No CDS exists (disconnected support). The backbone is optional:
		// serve everything else and report why it is absent.
		s.cdsErr = cerr.Error()
	} else {
		s.cdsSrc = cdsEng.(interface{ CDSMembers() []int })
		s.cds = &heal.Supervisor{Engine: cdsEng, Budget: cfg.RepairBudget, Ctx: s.ctx}
	}

	s.khopPool.New = func() any {
		sc := &khopScratch{dist: make([]int32, s.n), queue: make([]int32, 0, 64)}
		// dist stays all -1 between uses; handlers reset the entries they touch.
		for i := range sc.dist {
			sc.dist[i] = -1
		}
		return sc
	}

	if cfg.Recovered != nil {
		// The structures were constructed over a recovered graph, not healed
		// into place — audit them against every registered invariant before
		// the first epoch is published.
		standing := len(s.dv.Sweep()) + len(s.mis.Sweep())
		if s.cds != nil {
			standing += len(s.cds.Sweep())
		}
		s.met.recoveryStanding.Store(uint64(standing))
	}

	ep := s.buildEpoch(1)
	if cfg.OnPublish != nil {
		cfg.OnPublish(ep)
	}
	s.epoch.Store(ep)

	s.mux = http.NewServeMux()
	s.routes()
	go s.writer()
	return s, nil
}

// Epoch returns the currently published epoch.
func (s *Server) Epoch() *Epoch { return s.epoch.Load() }

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Quiesced reports whether every accepted mutation has been drained by the
// writer (published or rejected). With no concurrent /mutate traffic, a true
// result means the current epoch reflects all accepted mutations.
func (s *Server) Quiesced() bool { return s.applied.Load() == s.accepted.Load() }

// Shutdown stops accepting queries (503), cancels the writer — aborting any
// in-progress repair without publishing — and waits for in-flight requests
// and the writer to drain, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		<-s.writerDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writer is the single goroutine that owns all label state. It drains the
// mutation queue in batches, heals each batch through the supervisors, and
// publishes the next epoch. A batch interrupted by shutdown is abandoned
// without publishing: the last published epoch stays live and consistent.
func (s *Server) writer() {
	defer close(s.writerDone)
	for {
		var first Mutation
		select {
		case <-s.ctx.Done():
			return
		case first = <-s.mutCh:
		}
		batch := []Mutation{first}
		for len(batch) < s.cfg.BatchMax {
			select {
			case m := <-s.mutCh:
				batch = append(batch, m)
			default:
				goto drained
			}
		}
	drained:
		if s.testHookBatch != nil {
			s.testHookBatch()
		}
		if !s.applyBatch(batch) {
			s.applied.Add(uint64(len(batch)))
			return // cancelled mid-heal: abandon without publishing
		}
		s.applied.Add(uint64(len(batch)))
	}
}

// applyBatch heals one mutation batch through every supervisor and publishes
// the resulting epoch. It reports false when the batch could not be made
// durable or shutdown cancelled the heal — the labels may be mid-repair, so
// nothing is published.
func (s *Server) applyBatch(batch []Mutation) bool {
	if s.cfg.WAL != nil {
		// Write-ahead: the batch is journaled (and fsynced per policy)
		// before any label moves. The log applies the same topological
		// acceptance rule as the engines, so its replica and the serving
		// clones stay in lockstep, and replay-on-restart reconstructs
		// exactly the topology the published epoch was built from.
		recs := make([]wal.Record, 0, len(batch))
		for _, m := range batch {
			t := wal.TAddEdge
			if m.Op == "remove" {
				t = wal.TRemoveEdge
			}
			recs = append(recs, wal.Record{Type: t, U: int32(m.U), V: int32(m.V), Weight: 1})
		}
		if _, err := s.cfg.WAL.Append(recs); err != nil {
			s.met.walFailed.Add(1)
			s.met.abortedBatches.Add(1)
			return false
		}
	}
	events := make([]sim.Event, 0, len(batch))
	for _, m := range batch {
		op := sim.OpAddEdge
		if m.Op == "remove" {
			op = sim.OpRemoveEdge
		}
		events = append(events, sim.Event{Round: 1, Op: op, U: m.U, V: m.V})
	}
	sups := []*heal.Supervisor{s.dv, s.mis}
	if s.cds != nil {
		sups = append(sups, s.cds)
	}
	for _, sup := range sups {
		rep, err := sup.ApplyBatch(events)
		if rep != nil {
			s.met.repairs.Add(uint64(rep.Repairs))
			s.met.escalations.Add(uint64(rep.Escalations))
			s.met.repairRounds.Add(uint64(rep.RepairRounds))
			s.met.recomputeRounds.Add(uint64(rep.RecomputeRounds))
			s.met.standing.Add(uint64(len(rep.Standing)))
		}
		if err != nil {
			s.met.abortedBatches.Add(1)
			return false
		}
	}
	prev := s.epoch.Load()
	ep := s.buildEpoch(prev.Seq + 1)
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(ep)
	}
	s.epoch.Store(ep)
	s.met.batches.Add(1)
	return true
}
