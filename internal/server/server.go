// Package server is the serving layer: a resident process that owns a graph
// and answers structure queries — routing next-hops, k-hop neighborhoods,
// centrality top-k, backbone membership — over HTTP while mutation batches
// stream in. Reads are lock-free: every published state is an immutable
// Epoch behind an atomic.Pointer (RCU-style), loaded once per request.
// Writes funnel through a single writer goroutine that drains the mutation
// queue in batches, heals the labels through heal.Supervisor (localized
// repair first, full recompute when the budget is exhausted), and swaps in
// the next epoch. Readers never block writers and writers never block
// readers; old epochs are garbage-collected once the last in-flight request
// drops them.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"structura/internal/graph"
	"structura/internal/heal"
	"structura/internal/sim"
	"structura/internal/wal"
)

// Mutation is one client-submitted edge change.
type Mutation struct {
	Op string `json:"op"` // "add" | "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// Config tunes a Server. The zero value is usable; unset limits get
// defaults at construction.
type Config struct {
	// Dest is the destination node the route labels point toward.
	Dest int

	// SkipCDS disables the CDS backbone engine entirely. The MIS→CDS
	// construction requires a connected graph and does not scale to very
	// large supports, so high-throughput deployments opt out; /cds/member
	// then answers 404.
	SkipCDS bool

	// MaxInFlight caps concurrently-executing queries; excess requests are
	// shed with 429 rather than queued. Default 256.
	MaxInFlight int

	// QueueDepth is the mutation queue capacity; a full queue sheds
	// /mutate posts with 429. Default 4096.
	QueueDepth int

	// BatchMax bounds how many queued mutations the writer folds into one
	// epoch. Default 256.
	BatchMax int

	// MaxK caps the k accepted by /khop. Default 4.
	MaxK int

	// RepairBudget bounds each localized repair before the supervisor
	// escalates to a full recompute. Zero = unbounded repair.
	RepairBudget heal.Budget

	// WAL, when set, journals every mutation batch before it is healed or
	// published: a batch reaches the write-ahead log (fsynced per the log's
	// policy) first, so a crash at any later point replays it on restart.
	// A journaling error aborts the batch and stops the writer — the server
	// keeps serving the last published epoch, but no further epoch may be
	// built on state the log could not record. The caller owns the log's
	// lifecycle (Open/Create before New, Close after Shutdown).
	WAL *wal.Log

	// Recovered, when set, is the recovery report of the wal.Open that
	// produced the graph this server was built over. When the report carries
	// a usable durable label epoch, New warm-starts the engines from those
	// labels and heals exactly the recovery's dirty set — recovery-to-ready
	// becomes O(changes since the last epoch) instead of O(graph). Otherwise
	// the structures are built from scratch and audited with a full invariant
	// sweep. Either way the report and the standing-violation count are
	// exposed on /metrics.
	Recovered *wal.Recovery

	// OnPublish, when set, observes every epoch right before it is
	// published. Test hook for the consistency properties.
	OnPublish func(*Epoch)
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.MaxK <= 0 {
		c.MaxK = 4
	}
}

// endpointNames fixes the /metrics schema.
var endpointNames = []string{
	"/route", "/khop", "/centrality/topk", "/cds/member", "/labels",
	"/mutate", "/metrics", "/healthz",
}

// Server owns a graph and serves structure queries against RCU epochs.
type Server struct {
	cfg Config
	n   int

	epoch atomic.Pointer[Epoch]
	mux   *http.ServeMux
	sem   chan struct{} // concurrency-limit semaphore, non-blocking acquire
	mutCh chan Mutation

	// One supervisor per maintained structure, each over its own clone of
	// the topology. All three apply identical event batches; acceptance is
	// purely topological (self-loop / duplicate-add / missing-remove), so
	// the clones stay in lockstep.
	dv, mis, cds *heal.Supervisor
	dvEng        heal.Engine

	routeSrc interface{ RouteLabels() ([]float64, []int) }
	misSrc   interface{ MISLabels() []bool }
	cdsSrc   interface{ CDSMembers() []int } // nil: backbone not maintained
	cdsErr   string                          // why, when absent

	met *metrics

	ctx        context.Context
	cancel     context.CancelFunc
	writerDone chan struct{}
	inflight   sync.WaitGroup
	closed     atomic.Bool

	accepted atomic.Uint64 // mutations enqueued
	applied  atomic.Uint64 // mutations drained by the writer (published or dropped)

	khopPool sync.Pool // *khopScratch

	// testHookBatch, when set, runs after the writer drains a batch and
	// before it heals/publishes — the epoch-swap races in tests hang here.
	testHookBatch func()
}

type khopScratch struct {
	dist  []int32
	queue []int32
}

// New builds a Server over g (cloned per engine; the caller's graph is not
// retained), heals nothing — the initial labels come from scratch
// construction — and publishes epoch 1. The writer goroutine starts
// immediately; call Shutdown to stop it.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	start := time.Now()
	if g == nil || g.N() == 0 {
		return nil, errors.New("server: graph must have at least one node")
	}
	if g.Directed() {
		return nil, errors.New("server: graph must be undirected")
	}
	if cfg.Dest < 0 || cfg.Dest >= g.N() {
		return nil, fmt.Errorf("server: dest %d out of range [0,%d)", cfg.Dest, g.N())
	}
	cfg.setDefaults()

	s := &Server{
		cfg:        cfg,
		n:          g.N(),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		mutCh:      make(chan Mutation, cfg.QueueDepth),
		met:        newMetrics(endpointNames),
		writerDone: make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	// Warm start: when recovery carried a durable label epoch matching this
	// topology and destination, seed every engine from it and heal only the
	// dirty set instead of rebuilding from scratch.
	labels := recoveredLabels(cfg, g)

	// labelNs times label *acquisition* — the phase durable label epochs
	// exist to shorten: full recompute (BFS, greedy MIS, invariant sweep)
	// when no epoch survived, versus seeding engines from recovered labels
	// and healing only the dirty set. Graph clones are hoisted out of the
	// timed spans because both paths pay them identically; label_ns is the
	// recompute-vs-replay comparison, ready_ns the total boot wall time.
	var labelNs int64
	dvG, misG := g.Clone(), g.Clone()

	var dvEng, misEng heal.Engine
	var err error
	labelStart := time.Now()
	if labels != nil {
		next := make([]int, len(labels.Next))
		for i, v := range labels.Next {
			next[i] = int(v)
		}
		dvEng, err = heal.NewDistVecEngineFromLabels(dvG, cfg.Dest, labels.Dist, next)
	} else {
		dvEng, err = heal.NewDistVecEngineOver(dvG, cfg.Dest)
	}
	if err != nil {
		s.cancel()
		return nil, fmt.Errorf("server: distvec engine: %w", err)
	}
	if labels != nil {
		misEng, err = heal.NewMISEngineFromLabels(misG, labels.MIS)
	} else {
		misEng, err = heal.NewMISEngineOver(misG)
	}
	labelNs += time.Since(labelStart).Nanoseconds()
	if err != nil {
		s.cancel()
		return nil, fmt.Errorf("server: mis engine: %w", err)
	}
	s.dvEng = dvEng
	s.routeSrc = dvEng.(interface{ RouteLabels() ([]float64, []int) })
	s.misSrc = misEng.(interface{ MISLabels() []bool })
	s.dv = &heal.Supervisor{Engine: dvEng, Budget: cfg.RepairBudget, Ctx: s.ctx}
	s.mis = &heal.Supervisor{Engine: misEng, Budget: cfg.RepairBudget, Ctx: s.ctx}

	if cfg.SkipCDS {
		s.cdsErr = "disabled by config"
	} else {
		cdsG := g.Clone()
		labelStart = time.Now()
		if labels != nil && labels.HasCDS {
			cdsEng, cerr := heal.NewCDSEngineFromLabels(cdsG, labels.CDS)
			labelNs += time.Since(labelStart).Nanoseconds()
			if cerr != nil {
				s.cancel()
				return nil, fmt.Errorf("server: cds engine: %w", cerr)
			}
			s.cdsSrc = cdsEng.(interface{ CDSMembers() []int })
			s.cds = &heal.Supervisor{Engine: cdsEng, Budget: cfg.RepairBudget, Ctx: s.ctx}
		} else if cdsEng, cerr := heal.NewCDSEngineOver(cdsG); cerr != nil {
			// No CDS exists (disconnected support). The backbone is optional:
			// serve everything else and report why it is absent.
			labelNs += time.Since(labelStart).Nanoseconds()
			s.cdsErr = cerr.Error()
		} else {
			labelNs += time.Since(labelStart).Nanoseconds()
			s.cdsSrc = cdsEng.(interface{ CDSMembers() []int })
			s.cds = &heal.Supervisor{Engine: cdsEng, Budget: cfg.RepairBudget, Ctx: s.ctx}
		}
	}

	s.khopPool.New = func() any {
		sc := &khopScratch{dist: make([]int32, s.n), queue: make([]int32, 0, 64)}
		// dist stays all -1 between uses; handlers reset the entries they touch.
		for i := range sc.dist {
			sc.dist[i] = -1
		}
		return sc
	}

	if rec := cfg.Recovered; rec != nil {
		standing := 0
		labelStart = time.Now()
		if labels != nil {
			// Labels are trusted up to the dirty set recovery reported: heal
			// exactly those nodes, no full audit. This is what bounds
			// recovery-to-ready by the label lag instead of the graph size.
			s.met.warmStart.Store(1)
			s.met.dirtyHealed.Store(uint64(len(rec.Dirty)))
			for _, sup := range s.supervisors() {
				hrep, herr := sup.HealDirty(rec.Dirty)
				if hrep != nil {
					s.met.repairs.Add(uint64(hrep.Repairs))
					s.met.escalations.Add(uint64(hrep.Escalations))
					standing += len(hrep.Standing)
				}
				if herr != nil {
					s.cancel()
					return nil, fmt.Errorf("server: warm-start heal: %w", herr)
				}
			}
		} else {
			// The structures were constructed over a recovered graph, not
			// healed into place — audit them against every registered
			// invariant before the first epoch is published.
			for _, sup := range s.supervisors() {
				standing += len(sup.Sweep())
			}
		}
		labelNs += time.Since(labelStart).Nanoseconds()
		s.met.recoveryStanding.Store(uint64(standing))
	}
	s.met.labelNs.Store(labelNs)

	if cfg.WAL != nil {
		// Make the startup label epoch durable before serving: a process that
		// crashes before its first mutation batch still leaves labels the
		// next recovery can warm-start from. A warm start that healed nothing
		// diffs to zero records, so the steady-state restart is free.
		if _, err := cfg.WAL.AppendLabels(s.labelSet()); err != nil {
			s.cancel()
			return nil, fmt.Errorf("server: journal startup labels: %w", err)
		}
	}

	ep := s.buildEpoch(1)
	if cfg.OnPublish != nil {
		cfg.OnPublish(ep)
	}
	s.epoch.Store(ep)

	readyNs := time.Since(start).Nanoseconds()
	if rec := cfg.Recovered; rec != nil {
		readyNs += rec.RecoveryNs
	}
	s.met.readyNs.Store(readyNs)

	s.mux = http.NewServeMux()
	s.routes()
	go s.writer()
	return s, nil
}

// recoveredLabels returns the recovery report's label epoch when it is
// usable for a warm start over g — present, sized to the recovered
// topology, and pointing at the configured destination — else nil.
func recoveredLabels(cfg Config, g *graph.Graph) *wal.LabelSet {
	rec := cfg.Recovered
	if rec == nil || rec.Labels == nil {
		return nil
	}
	ls := rec.Labels
	if ls.N() != g.N() || len(ls.MIS) != g.N() || ls.Dest != cfg.Dest {
		return nil
	}
	if ls.HasCDS && len(ls.CDS) != g.N() {
		return nil
	}
	return ls
}

// supervisors lists the active supervisors in a fixed order.
func (s *Server) supervisors() []*heal.Supervisor {
	sups := []*heal.Supervisor{s.dv, s.mis}
	if s.cds != nil {
		sups = append(sups, s.cds)
	}
	return sups
}

// labelSet snapshots the writer-owned engine state as one label epoch, the
// unit AppendLabels journals. Only the writer (or New, before the writer
// starts) may call it.
func (s *Server) labelSet() *wal.LabelSet {
	dist, next := s.routeSrc.RouteLabels()
	n32 := make([]int32, len(next))
	for i, v := range next {
		n32[i] = int32(v)
	}
	ls := &wal.LabelSet{Dest: s.cfg.Dest, Dist: dist, Next: n32, MIS: s.misSrc.MISLabels()}
	if s.cdsSrc != nil {
		bm := make([]bool, len(dist))
		for _, v := range s.cdsSrc.CDSMembers() {
			bm[v] = true
		}
		ls.HasCDS, ls.CDS = true, bm
	}
	return ls
}

// Epoch returns the currently published epoch.
func (s *Server) Epoch() *Epoch { return s.epoch.Load() }

// ReadySummary reports how construction reached serving state: total
// nanoseconds from recovery start to ready (WAL replay included), whether
// the engines warm-started from a durable label epoch instead of a full
// recompute, and how many dirty nodes that warm start had to heal.
func (s *Server) ReadySummary() (readyNs, labelNs int64, warmStart bool, dirtyHealed uint64) {
	return s.met.readyNs.Load(), s.met.labelNs.Load(), s.met.warmStart.Load() == 1, s.met.dirtyHealed.Load()
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Quiesced reports whether every accepted mutation has been drained by the
// writer (published or rejected). With no concurrent /mutate traffic, a true
// result means the current epoch reflects all accepted mutations.
func (s *Server) Quiesced() bool { return s.applied.Load() == s.accepted.Load() }

// Shutdown stops accepting queries (503), cancels the writer — aborting any
// in-progress repair without publishing — and waits for in-flight requests
// and the writer to drain, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		<-s.writerDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writer is the single goroutine that owns all label state. It drains the
// mutation queue in batches, heals each batch through the supervisors, and
// publishes the next epoch. A batch interrupted by shutdown is abandoned
// without publishing: the last published epoch stays live and consistent.
func (s *Server) writer() {
	defer close(s.writerDone)
	for {
		var first Mutation
		select {
		case <-s.ctx.Done():
			return
		case first = <-s.mutCh:
		}
		batch := []Mutation{first}
		for len(batch) < s.cfg.BatchMax {
			select {
			case m := <-s.mutCh:
				batch = append(batch, m)
			default:
				goto drained
			}
		}
	drained:
		if s.testHookBatch != nil {
			s.testHookBatch()
		}
		if !s.applyBatch(batch) {
			s.applied.Add(uint64(len(batch)))
			return // cancelled mid-heal: abandon without publishing
		}
		s.applied.Add(uint64(len(batch)))
	}
}

// applyBatch heals one mutation batch through every supervisor and publishes
// the resulting epoch. It reports false when the batch could not be made
// durable or shutdown cancelled the heal — the labels may be mid-repair, so
// nothing is published.
func (s *Server) applyBatch(batch []Mutation) bool {
	if s.cfg.WAL != nil {
		// Write-ahead: the batch is journaled (and fsynced per policy)
		// before any label moves. The log applies the same topological
		// acceptance rule as the engines, so its replica and the serving
		// clones stay in lockstep, and replay-on-restart reconstructs
		// exactly the topology the published epoch was built from.
		recs := make([]wal.Record, 0, len(batch))
		for _, m := range batch {
			t := wal.TAddEdge
			if m.Op == "remove" {
				t = wal.TRemoveEdge
			}
			recs = append(recs, wal.Record{Type: t, U: int32(m.U), V: int32(m.V), Weight: 1})
		}
		if _, err := s.cfg.WAL.Append(recs); err != nil {
			s.met.walFailed.Add(1)
			s.met.abortedBatches.Add(1)
			return false
		}
	}
	events := make([]sim.Event, 0, len(batch))
	for _, m := range batch {
		op := sim.OpAddEdge
		if m.Op == "remove" {
			op = sim.OpRemoveEdge
		}
		events = append(events, sim.Event{Round: 1, Op: op, U: m.U, V: m.V})
	}
	for _, sup := range s.supervisors() {
		rep, err := sup.ApplyBatch(events)
		if rep != nil {
			s.met.repairs.Add(uint64(rep.Repairs))
			s.met.escalations.Add(uint64(rep.Escalations))
			s.met.repairRounds.Add(uint64(rep.RepairRounds))
			s.met.recomputeRounds.Add(uint64(rep.RecomputeRounds))
			s.met.standing.Add(uint64(len(rep.Standing)))
		}
		if err != nil {
			s.met.abortedBatches.Add(1)
			return false
		}
	}
	if s.cfg.WAL != nil {
		// Journal the healed label epoch after the topology commit and before
		// publication (journal-before-publish). The deltas are stamped with
		// the committed batch seq, so recovery can never reconstruct labels
		// newer than the durable topology — a crash between the topology
		// commit and here just costs the next start a HealDirty pass.
		if _, err := s.cfg.WAL.AppendLabels(s.labelSet()); err != nil {
			s.met.walFailed.Add(1)
			s.met.abortedBatches.Add(1)
			return false
		}
	}
	prev := s.epoch.Load()
	ep := s.buildEpoch(prev.Seq + 1)
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(ep)
	}
	s.epoch.Store(ep)
	s.met.batches.Add(1)
	return true
}
