package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/stats"
)

func postMutations(t *testing.T, h http.Handler, ops []Mutation) int {
	t.Helper()
	body, err := json.Marshal(mutateRequest{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/mutate", bytes.NewReader(body)))
	return rec.Code
}

func awaitQuiesced(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !srv.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("server never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeConcurrentReadsDuringEpochSwap is the race-detector hammer:
// GOMAXPROCS goroutines read every endpoint flat-out while the writer swaps
// epochs underneath them. Run under -race (the Makefile race and serve-smoke
// targets do), this is the proof that the RCU read path is synchronization-
// free but race-free: readers touch only the epoch snapshot they loaded.
func TestServeConcurrentReadsDuringEpochSwap(t *testing.T) {
	const n = 500
	g := gen.SparseErdosRenyi(stats.NewRand(11), n, 8.0/float64(n-1))
	srv, err := New(g, Config{SkipCDS: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	workers := runtime.GOMAXPROCS(0)
	queriesPer := 3000
	if testing.Short() {
		queriesPer = 500
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			targets := []string{
				"/route?from=%d", "/labels?node=%d", "/khop?node=%d&k=2",
				"/centrality/topk?k=8", "/labels", "/metrics", "/healthz",
			}
			for i := 0; i < queriesPer; i++ {
				h := splitmix64(uint64(wid)<<20 ^ uint64(i))
				target := targets[h%uint64(len(targets))]
				if bytes.ContainsRune([]byte(target), '%') {
					target = fmt.Sprintf(target, h%n)
				}
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				if rec.Code >= 500 {
					errCh <- fmt.Errorf("%s: status %d body %s", target, rec.Code, rec.Body.String())
					return
				}
			}
		}(wid)
	}

	// Writer load: continuous small batches of add/remove pairs until the
	// readers finish, so epoch swaps overlap the reads the whole time.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	r := stats.NewRand(23)
	var prev []Mutation
loop:
	for {
		select {
		case <-done:
			break loop
		default:
		}
		ops := make([]Mutation, 0, 8)
		for _, m := range prev {
			ops = append(ops, Mutation{Op: "remove", U: m.U, V: m.V})
		}
		prev = prev[:0]
		for i := 0; i < 4; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			m := Mutation{Op: "add", U: u, V: v}
			ops = append(ops, m)
			prev = append(prev, m)
		}
		if len(ops) > 0 {
			postMutations(t, srv.Handler(), ops)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	awaitQuiesced(t, srv)
	if seq := srv.Epoch().Seq; seq < 2 {
		t.Fatalf("epoch seq = %d: no swaps happened under the hammer", seq)
	}
}

// TestEpochConsistencyProperty is the no-torn-reads property: every response
// names the epoch it was served from, and its label values must match that
// published epoch exactly — even while the writer is swapping epochs under
// the readers. OnPublish records every epoch before it becomes visible, so
// any response whose values mix two epochs fails the lookup.
func TestEpochConsistencyProperty(t *testing.T) {
	const n = 200
	g := gen.SparseErdosRenyi(stats.NewRand(31), n, 6.0/float64(n-1))
	var mu sync.Mutex
	published := map[uint64]*Epoch{}
	srv, err := New(g, Config{SkipCDS: true, OnPublish: func(ep *Epoch) {
		mu.Lock()
		published[ep.Seq] = ep
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	queries := 4000
	if testing.Short() {
		queries = 800
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < queries; i++ {
			node := int(splitmix64(uint64(i)) % n)
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest(
				http.MethodGet, fmt.Sprintf("/labels?node=%d", node), nil))
			var resp nodeLabelsResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			ep := published[resp.Epoch]
			mu.Unlock()
			if ep == nil {
				errCh <- fmt.Errorf("response names unpublished epoch %d", resp.Epoch)
				return
			}
			wantDist := ep.RouteDist[node]
			if math.IsInf(wantDist, 1) {
				wantDist = -1
			}
			if resp.RouteDist != wantDist || resp.RouteNext != ep.RouteNext[node] ||
				resp.MIS != ep.MIS[node] || resp.Degree != ep.CSR.Degree(node) {
				errCh <- fmt.Errorf("torn read: %+v does not match epoch %d at node %d", resp, ep.Seq, node)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	r := stats.NewRand(37)
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
			continue
		default:
		}
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			postMutations(t, srv.Handler(), []Mutation{{Op: "add", U: u, V: v}})
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestRouteAgreesWithBFS is the regression pinning the serving path to
// ground truth: after a mutation batch quiesces, every /route response must
// report the BFS hop distance on the mutated topology, and its next-hop path
// must walk real edges of that topology.
func TestRouteAgreesWithBFS(t *testing.T) {
	const n = 150
	mirror := gen.SparseErdosRenyi(stats.NewRand(41), n, 5.0/float64(n-1))
	srv, err := New(mirror.Clone(), Config{SkipCDS: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Mutate through the server and mirror the accepted ops locally with the
	// same semantics (duplicate adds and missing removes are rejected).
	r := stats.NewRand(43)
	var ops []Mutation
	for len(ops) < 60 {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if r.Intn(2) == 0 {
			if !mirror.HasEdge(u, v) {
				if err := mirror.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			ops = append(ops, Mutation{Op: "add", U: u, V: v})
		} else {
			mirror.RemoveEdge(u, v) // no-op when absent, same as the engine
			ops = append(ops, Mutation{Op: "remove", U: u, V: v})
		}
	}
	if code := postMutations(t, srv.Handler(), ops); code != http.StatusAccepted {
		t.Fatalf("mutate status %d", code)
	}
	awaitQuiesced(t, srv)

	wantDist, _, err := mirror.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(
			http.MethodGet, fmt.Sprintf("/route?from=%d", v), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("route %d: status %d", v, rec.Code)
		}
		var resp routeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want := float64(wantDist[v])
		if wantDist[v] < 0 {
			want = -1
		}
		if resp.Dist != want {
			t.Fatalf("route %d: dist %v, want %v (BFS)", v, resp.Dist, want)
		}
		if want < 0 {
			continue
		}
		if len(resp.Path) != int(want)+1 {
			t.Fatalf("route %d: path %v has %d hops, want %v", v, resp.Path, len(resp.Path)-1, want)
		}
		for i := 0; i+1 < len(resp.Path); i++ {
			if !mirror.HasEdge(resp.Path[i], resp.Path[i+1]) {
				t.Fatalf("route %d: path step (%d,%d) is not an edge", v, resp.Path[i], resp.Path[i+1])
			}
		}
	}
}

// TestShutdownDuringBatchAbandonsWithoutPublishing pins the shutdown
// contract end to end: cancellation landing while the writer is mid-batch
// neither hangs the shutdown nor publishes a half-healed epoch — the last
// published epoch stays live and the batch is counted as aborted.
func TestShutdownDuringBatchAbandonsWithoutPublishing(t *testing.T) {
	srv, err := New(fixtureGraph(t), Config{Dest: 0})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	srv.testHookBatch = func() {
		close(started)
		<-srv.ctx.Done() // park mid-batch until shutdown fires
	}
	if code := postMutations(t, srv.Handler(), []Mutation{{Op: "remove", U: 2, V: 3}}); code != http.StatusAccepted {
		t.Fatalf("mutate status %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never started the batch")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown hung on an in-progress batch: %v", err)
	}
	if seq := srv.Epoch().Seq; seq != 1 {
		t.Fatalf("epoch seq = %d: an abandoned batch must not publish", seq)
	}
	if got := srv.met.abortedBatches.Load(); got != 1 {
		t.Fatalf("aborted batches = %d, want 1", got)
	}
}
