package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"structura/internal/gen"
	"structura/internal/stats"
	"structura/internal/wal"
)

// journaledServer builds a Server journaling to a fresh MemFS-backed WAL.
func journaledServer(t *testing.T, mem *wal.MemFS, cfg Config) (*Server, *wal.Log) {
	t.Helper()
	return journaledServerOn(t, mem, cfg)
}

// journaledServerOn is journaledServer over any wal.FS (fault injection).
func journaledServerOn(t *testing.T, fsys wal.FS, cfg Config) (*Server, *wal.Log) {
	t.Helper()
	g := gen.SparseErdosRenyi(stats.NewRand(11), 40, 0.12)
	l, err := wal.Create("store", g, wal.Options{FS: fsys, CompactEvery: 3})
	if err != nil {
		t.Fatalf("wal create: %v", err)
	}
	cfg.WAL = l
	cfg.SkipCDS = true
	s, err := New(g, cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	return s, l
}

func postMutationsJSON(t *testing.T, h http.Handler, body string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/mutate", strings.NewReader(body))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("mutate: status %d: %s", rw.Code, rw.Body.String())
	}
}

func waitQuiesced(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("server never quiesced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerJournalsBeforePublish drives mutations through the HTTP surface
// and checks the WAL replica tracks every published epoch: after quiescing,
// the durable replica's hash equals the served topology's hash, and a
// server rebuilt from recovery over the same store publishes the identical
// topology with a clean invariant sweep.
func TestServerJournalsBeforePublish(t *testing.T) {
	mem := wal.NewMemFS()
	s, l := journaledServer(t, mem, Config{Dest: 0})

	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":1,"v":7},{"op":"add","u":2,"v":9},{"op":"remove","u":1,"v":7}]}`)
	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":3,"v":30},{"op":"add","u":3,"v":30}]}`)
	waitQuiesced(t, s)

	served := wal.CSRHash(s.Epoch().CSR)
	if durable := wal.GraphHash(l.Graph()); durable != served {
		t.Fatalf("durable replica hash %x != served epoch hash %x", durable, served)
	}

	// /metrics exposes the WAL block.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	var snap MetricsSnapshot
	if err := json.NewDecoder(rw.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if snap.WAL == nil || snap.WAL.Batches == 0 || snap.WAL.Syncs == 0 {
		t.Fatalf("metrics missing WAL activity: %+v", snap.WAL)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	// Restart: recover the store, rebuild the server over the recovered
	// graph, and compare the served topology.
	l2, rec, err := wal.Open("store", wal.Options{FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	s2, err := New(l2.Graph(), Config{Dest: 0, SkipCDS: true, WAL: l2, Recovered: &rec})
	if err != nil {
		t.Fatalf("server after recovery: %v", err)
	}
	defer s2.Shutdown(context.Background())

	if got := wal.CSRHash(s2.Epoch().CSR); got != served {
		t.Fatalf("recovered server serves hash %x, want %x", got, served)
	}

	rw = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	snap = MetricsSnapshot{}
	if err := json.NewDecoder(rw.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if snap.WAL == nil {
		t.Fatal("recovered server metrics missing WAL block")
	}
	if snap.WAL.RecoveryStanding != 0 {
		t.Fatalf("post-recovery sweep found %d standing violation(s)", snap.WAL.RecoveryStanding)
	}
	if snap.WAL.RecoveredSeq != rec.Seq {
		t.Fatalf("metrics recovered_seq %d, want %d", snap.WAL.RecoveredSeq, rec.Seq)
	}

	// /labels?hash=1 reports the recovered topology hash.
	rw = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/labels?hash=1", nil))
	var sum summaryResponse
	if err := json.NewDecoder(rw.Body).Decode(&sum); err != nil {
		t.Fatalf("labels decode: %v", err)
	}
	if want := len("0123456789abcdef"); len(sum.GraphHash) != want {
		t.Fatalf("graph_hash %q is not a 16-hex-digit string", sum.GraphHash)
	}
}

// TestServerStopsOnJournalFailure breaks the log under the server and checks
// the writer aborts the batch instead of publishing unjournaled state.
func TestServerStopsOnJournalFailure(t *testing.T) {
	mem := wal.NewMemFS()
	fsys := wal.NewFaultFS(mem, 1, -1)
	g := gen.SparseErdosRenyi(stats.NewRand(11), 30, 0.15)
	l, err := wal.Create("store", g, wal.Options{FS: fsys, CompactEvery: -1})
	if err != nil {
		t.Fatalf("wal create: %v", err)
	}
	defer l.Close()
	s, err := New(g, Config{Dest: 0, SkipCDS: true, WAL: l})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer s.Shutdown(context.Background())

	before := s.Epoch().Seq
	fsys.ShortWriteAt(fsys.Ops()) // next write fails

	postMutationsJSON(t, s.Handler(), `{"ops":[{"op":"add","u":1,"v":20}]}`)
	waitQuiesced(t, s)

	if got := s.Epoch().Seq; got != before {
		t.Fatalf("epoch advanced to %d after a journaling failure (was %d)", got, before)
	}
	if s.met.walFailed.Load() != 1 {
		t.Fatalf("walFailed = %d, want 1", s.met.walFailed.Load())
	}
}

// TestGate503UntilReady covers the recovery gate: every path (including
// /healthz) answers 503 before SetReady and serves normally after.
func TestGate503UntilReady(t *testing.T) {
	gate := NewGate()
	for _, p := range []string{"/healthz", "/labels", "/route?from=1"} {
		rw := httptest.NewRecorder()
		gate.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, p, nil))
		if rw.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s before ready: status %d, want 503", p, rw.Code)
		}
	}
	if gate.Ready() {
		t.Fatal("gate reports ready before SetReady")
	}

	g := gen.SparseErdosRenyi(stats.NewRand(3), 20, 0.2)
	s, err := New(g, Config{Dest: 0, SkipCDS: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	gate.SetReady(s.Handler())
	if !gate.Ready() {
		t.Fatal("gate not ready after SetReady")
	}
	rw := httptest.NewRecorder()
	gate.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/healthz after ready: status %d, want 200", rw.Code)
	}
}
