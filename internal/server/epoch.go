package server

import (
	"math"
	"time"

	"structura/internal/centrality"
	"structura/internal/graph"
)

// Epoch is one immutable published snapshot of the served structures: the
// CSR topology plus every label array a query can touch, built by the
// writer after a mutation batch heals and swapped in through an
// atomic.Pointer (RCU-style). Readers load the pointer once per request and
// answer entirely from that one epoch, so a response can never mix label
// arrays from two different topology versions — the consistency property
// the epoch tests pin. All fields are read-only after publication.
type Epoch struct {
	Seq     uint64    // 1-based publication counter
	Created time.Time // publication instant, for the epoch-age metric

	CSR  *graph.CSR
	Dest int // destination the route labels point toward

	// Distance-vector route labels toward Dest: hop distance (+Inf when
	// unreachable) and next hop (-1 at Dest and when unreachable).
	RouteDist []float64
	RouteNext []int

	// MIS membership under ID priorities.
	MIS     []bool
	MISSize int

	// CDS backbone membership; nil when the backbone is not maintained
	// (disconnected support at startup, or Config.SkipCDS).
	CDS     []bool
	CDSSize int

	// Degree-centrality ranking: node IDs by descending degree, ties by
	// ascending ID (centrality.Ranking), with the parallel score array —
	// what /centrality/topk slices.
	Rank []int
	Deg  []float64

	// Unreachable counts nodes with no route to Dest, a staleness signal
	// surfaced by /labels and /metrics.
	Unreachable int
}

// buildEpoch assembles the next epoch from the writer-owned engine state.
// Only the writer goroutine calls it; every array is freshly allocated so
// publication hands the readers exclusively immutable data.
func (s *Server) buildEpoch(seq uint64) *Epoch {
	csr := s.dvEng.Live().Freeze()
	dist, next := s.routeSrc.RouteLabels()
	mis := s.misSrc.MISLabels()
	n := csr.N()

	ep := &Epoch{
		Seq:       seq,
		Created:   time.Now(),
		CSR:       csr,
		Dest:      s.cfg.Dest,
		RouteDist: dist,
		RouteNext: next,
		MIS:       mis,
	}
	for _, in := range mis {
		if in {
			ep.MISSize++
		}
	}
	for _, d := range dist {
		if math.IsInf(d, 1) {
			ep.Unreachable++
		}
	}
	if s.cdsSrc != nil {
		members := s.cdsSrc.CDSMembers()
		bm := make([]bool, n)
		for _, v := range members {
			bm[v] = true
		}
		ep.CDS = bm
		ep.CDSSize = len(members)
	}
	ep.Deg = make([]float64, n)
	for v := 0; v < n; v++ {
		ep.Deg[v] = float64(csr.Degree(v))
	}
	ep.Rank = centrality.Ranking(ep.Deg)
	return ep
}
