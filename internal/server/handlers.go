package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"structura/internal/wal"
)

// routes wires every endpoint into the mux. Query endpoints go through the
// shed gate; /metrics and /healthz bypass it so observability survives
// overload.
func (s *Server) routes() {
	s.mux.HandleFunc("/route", s.handle("/route", true, s.handleRoute))
	s.mux.HandleFunc("/khop", s.handle("/khop", true, s.handleKhop))
	s.mux.HandleFunc("/centrality/topk", s.handle("/centrality/topk", true, s.handleTopK))
	s.mux.HandleFunc("/cds/member", s.handle("/cds/member", true, s.handleCDSMember))
	s.mux.HandleFunc("/labels", s.handle("/labels", true, s.handleLabels))
	s.mux.HandleFunc("/mutate", s.handle("/mutate", true, s.handleMutate))
	s.mux.HandleFunc("/metrics", s.handle("/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.handle("/healthz", false, s.handleHealthz))
}

// handlerFunc is an endpoint body that reports the status it wrote, so the
// serving wrapper can observe latency by status without allocating a
// ResponseWriter shim per request.
type handlerFunc func(w http.ResponseWriter, r *http.Request) int

// handle wraps an endpoint with the serving policy: 503 after shutdown,
// 429 shed at the concurrency limit (non-blocking semaphore acquire — a
// saturated server rejects instantly instead of queueing), in-flight
// tracking for graceful drain, and per-endpoint latency observation.
func (s *Server) handle(name string, useSem bool, fn handlerFunc) http.HandlerFunc {
	est := s.met.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		if useSem {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				est.shed.Add(1)
				writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
				return
			}
		}
		start := time.Now()
		status := fn(w, r)
		est.observe(time.Since(start), status)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, msg string) int {
	return writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}

// nodeParam parses a required in-range node ID query parameter.
func (s *Server) nodeParam(q url.Values, name string) (int, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%q must be an integer", name)
	}
	if v < 0 || v >= s.n {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, s.n)
	}
	return v, nil
}

// intParam parses an optional positive integer parameter with a default.
func intParam(q url.Values, name string, def int) (int, error) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%q must be a positive integer", name)
	}
	return v, nil
}

type routeResponse struct {
	Epoch uint64  `json:"epoch"`
	From  int     `json:"from"`
	Dest  int     `json:"dest"`
	Dist  float64 `json:"dist"` // hop count, -1 when unreachable
	Path  []int   `json:"path,omitempty"`
}

// handleRoute walks the distance-vector next-hop chain from the source to
// the destination. The whole walk reads one epoch, so the chain is loop-free
// by the maintainer's fixed point; the step bound is a defensive guard only.
// Unreachable sources report dist -1 (math.Inf does not marshal to JSON).
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) int {
	from, err := s.nodeParam(r.URL.Query(), "from")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	ep := s.epoch.Load()
	resp := routeResponse{Epoch: ep.Seq, From: from, Dest: ep.Dest, Dist: -1}
	if d := ep.RouteDist[from]; !math.IsInf(d, 1) {
		resp.Dist = d
		path := []int{from}
		for v := from; v != ep.Dest; {
			nx := ep.RouteNext[v]
			if nx < 0 || len(path) > len(ep.RouteNext) {
				return writeError(w, http.StatusInternalServerError, "next-hop chain does not reach dest")
			}
			path = append(path, nx)
			v = nx
		}
		resp.Path = path
	}
	return writeJSON(w, http.StatusOK, resp)
}

type khopResponse struct {
	Epoch uint64 `json:"epoch"`
	Node  int    `json:"node"`
	K     int    `json:"k"`
	Count int    `json:"count"`
	Nodes []int  `json:"nodes"`
}

// handleKhop runs a depth-bounded BFS on the epoch's CSR using pooled
// scratch (allocation-free on the hot path apart from the response), and
// returns the nodes within k hops, sorted, excluding the center.
func (s *Server) handleKhop(w http.ResponseWriter, r *http.Request) int {
	query := r.URL.Query()
	node, err := s.nodeParam(query, "node")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	k, err := intParam(query, "k", 1)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if k > s.cfg.MaxK {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("k %d exceeds the configured cap %d", k, s.cfg.MaxK))
	}
	ep := s.epoch.Load()
	sc := s.khopPool.Get().(*khopScratch)
	q := sc.queue[:0]
	q = append(q, int32(node))
	sc.dist[node] = 0
	for head := 0; head < len(q); head++ {
		v := q[head]
		if sc.dist[v] >= int32(k) {
			continue
		}
		for _, u := range ep.CSR.Neighbors(int(v)) {
			if sc.dist[u] < 0 {
				sc.dist[u] = sc.dist[v] + 1
				q = append(q, u)
			}
		}
	}
	nodes := make([]int, 0, len(q)-1)
	for _, v := range q {
		sc.dist[v] = -1 // reset touched entries before pooling
		if int(v) != node {
			nodes = append(nodes, int(v))
		}
	}
	sc.queue = q[:0]
	s.khopPool.Put(sc)
	sort.Ints(nodes)
	return writeJSON(w, http.StatusOK, khopResponse{
		Epoch: ep.Seq, Node: node, K: k, Count: len(nodes), Nodes: nodes,
	})
}

type rankedNode struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

type topKResponse struct {
	Epoch uint64       `json:"epoch"`
	K     int          `json:"k"`
	Nodes []rankedNode `json:"nodes"`
}

// handleTopK slices the epoch's precomputed degree-centrality ranking.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) int {
	k, err := intParam(r.URL.Query(), "k", 10)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	ep := s.epoch.Load()
	if k > len(ep.Rank) {
		k = len(ep.Rank)
	}
	nodes := make([]rankedNode, k)
	for i := 0; i < k; i++ {
		v := ep.Rank[i]
		nodes[i] = rankedNode{Node: v, Score: ep.Deg[v]}
	}
	return writeJSON(w, http.StatusOK, topKResponse{Epoch: ep.Seq, K: k, Nodes: nodes})
}

type cdsMemberResponse struct {
	Epoch  uint64 `json:"epoch"`
	Node   int    `json:"node"`
	Member bool   `json:"member"`
	Size   int    `json:"size"`
}

// handleCDSMember answers backbone membership; 404 when the backbone is not
// maintained (SkipCDS, or no CDS exists over the support).
func (s *Server) handleCDSMember(w http.ResponseWriter, r *http.Request) int {
	node, err := s.nodeParam(r.URL.Query(), "node")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	ep := s.epoch.Load()
	if ep.CDS == nil {
		return writeError(w, http.StatusNotFound, "cds backbone not maintained: "+s.cdsErr)
	}
	return writeJSON(w, http.StatusOK, cdsMemberResponse{
		Epoch: ep.Seq, Node: node, Member: ep.CDS[node], Size: ep.CDSSize,
	})
}

type nodeLabelsResponse struct {
	Epoch     uint64  `json:"epoch"`
	Node      int     `json:"node"`
	Degree    int     `json:"degree"`
	RouteDist float64 `json:"route_dist"` // -1 when unreachable
	RouteNext int     `json:"route_next"` // -1 at dest / unreachable
	MIS       bool    `json:"mis"`
	CDS       *bool   `json:"cds,omitempty"` // absent when no backbone
}

type summaryResponse struct {
	Epoch       uint64 `json:"epoch"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Dest        int    `json:"dest"`
	MISSize     int    `json:"mis_size"`
	CDSSize     int    `json:"cds_size"` // -1 when no backbone
	Unreachable int    `json:"unreachable"`
	GraphHash   string `json:"graph_hash,omitempty"` // only with ?hash=1
}

// handleLabels returns one node's full label set, or the epoch summary when
// no node is named. With ?hash=1 the summary includes an order-insensitive
// hash of the epoch's topology — how a restarted server proves its recovered
// state is bit-equivalent to what the client saw before the crash.
func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) int {
	query := r.URL.Query()
	ep := s.epoch.Load()
	if query.Get("node") == "" {
		cdsSize := -1
		if ep.CDS != nil {
			cdsSize = ep.CDSSize
		}
		resp := summaryResponse{
			Epoch: ep.Seq, Nodes: ep.CSR.N(), Edges: ep.CSR.M(), Dest: ep.Dest,
			MISSize: ep.MISSize, CDSSize: cdsSize, Unreachable: ep.Unreachable,
		}
		if query.Get("hash") != "" {
			resp.GraphHash = fmt.Sprintf("%016x", wal.CSRHash(ep.CSR))
		}
		return writeJSON(w, http.StatusOK, resp)
	}
	node, err := s.nodeParam(query, "node")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	resp := nodeLabelsResponse{
		Epoch: ep.Seq, Node: node, Degree: ep.CSR.Degree(node),
		RouteDist: -1, RouteNext: ep.RouteNext[node], MIS: ep.MIS[node],
	}
	if d := ep.RouteDist[node]; !math.IsInf(d, 1) {
		resp.RouteDist = d
	}
	if ep.CDS != nil {
		in := ep.CDS[node]
		resp.CDS = &in
	}
	return writeJSON(w, http.StatusOK, resp)
}

type mutateRequest struct {
	Ops []Mutation `json:"ops"`
}

type mutateResponse struct {
	Accepted int `json:"accepted"`
	Queued   int `json:"queued"`
}

// handleMutate validates and enqueues a mutation batch for the writer. The
// enqueue is non-blocking: a full queue sheds the remainder with 429 (the
// response reports how many ops were accepted before the queue filled).
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "mutate requires POST")
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "malformed body: "+err.Error())
	}
	if len(req.Ops) == 0 {
		return writeError(w, http.StatusBadRequest, "empty ops")
	}
	for _, m := range req.Ops {
		if m.Op != "add" && m.Op != "remove" {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("op %q must be \"add\" or \"remove\"", m.Op))
		}
		if m.U < 0 || m.U >= s.n || m.V < 0 || m.V >= s.n || m.U == m.V {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("edge (%d,%d) out of range or self-loop", m.U, m.V))
		}
	}
	accepted := 0
	for _, m := range req.Ops {
		select {
		case s.mutCh <- m:
			s.accepted.Add(1)
			accepted++
		default:
			return writeJSON(w, http.StatusTooManyRequests, mutateResponse{
				Accepted: accepted, Queued: len(s.mutCh),
			})
		}
	}
	return writeJSON(w, http.StatusAccepted, mutateResponse{
		Accepted: accepted, Queued: len(s.mutCh),
	})
}

// MetricsSnapshot is the /metrics response.
type MetricsSnapshot struct {
	Epoch           uint64                      `json:"epoch"`
	EpochAgeNs      int64                       `json:"epoch_age_ns"`
	QueueDepth      int                         `json:"queue_depth"`
	Accepted        uint64                      `json:"accepted"`
	Applied         uint64                      `json:"applied"`
	Batches         uint64                      `json:"batches"`
	AbortedBatches  uint64                      `json:"aborted_batches"`
	Repairs         uint64                      `json:"repairs"`
	Escalations     uint64                      `json:"escalations"`
	RepairRounds    uint64                      `json:"repair_rounds"`
	RecomputeRounds uint64                      `json:"recompute_rounds"`
	Standing        uint64                      `json:"standing"`
	WAL             *WALSnapshot                `json:"wal,omitempty"`
	Endpoints       map[string]EndpointSnapshot `json:"endpoints"`
}

// WALSnapshot is the durability block of /metrics, present only when the
// server journals to a write-ahead log.
type WALSnapshot struct {
	Seq         uint64 `json:"seq"`          // last committed batch sequence
	Records     uint64 `json:"records"`      // cumulative mutation records (incl. compacted history)
	Batches     uint64 `json:"batches"`      // batches journaled by this process
	Syncs       uint64 `json:"syncs"`        // fsyncs issued on the append path
	Compactions uint64 `json:"compactions"`  // snapshot+truncate cycles
	Depth       uint64 `json:"depth"`        // records in the live log suffix
	FsyncAvgNs  int64  `json:"fsync_avg_ns"` // mean fsync latency, 0 when none yet
	FsyncMaxNs  int64  `json:"fsync_max_ns"`
	Failed      uint64 `json:"failed"` // batches aborted by journaling errors

	Gen          uint64 `json:"gen"`           // live log generation
	Fence        uint64 `json:"fence"`         // fencing token this store was opened with
	DurableBytes int64  `json:"durable_bytes"` // fsynced byte length of the live generation
	LabelSeq     uint64 `json:"label_seq"`     // batch seq of the last durable label epoch
	LabelRecords uint64 `json:"label_records"` // label-delta records appended by this process

	// Recovery report of the Open that seeded this process, when it was a
	// restart rather than a fresh store.
	RecoveredSeq      uint64 `json:"recovered_seq,omitempty"`
	RecoveredBatches  int    `json:"recovered_batches,omitempty"`
	RecoveredRecords  int    `json:"recovered_records,omitempty"`
	RecoveryTruncated bool   `json:"recovery_truncated,omitempty"`
	RecoveryReason    string `json:"recovery_reason,omitempty"`
	RecoveryStanding  uint64 `json:"recovery_standing"`

	// Startup cost: RecoveryNs is what wal.Open spent replaying durable
	// state, ReadyNs spans recovery through the first published epoch.
	// WarmStart reports whether the engines were seeded from a durable label
	// epoch (healing DirtyHealed nodes) instead of recomputed from scratch.
	RecoveryNs  int64  `json:"recovery_ns,omitempty"`
	ReadyNs     int64  `json:"ready_ns,omitempty"`
	LabelNs     int64  `json:"label_ns,omitempty"`
	WarmStart   bool   `json:"warm_start,omitempty"`
	DirtyHealed uint64 `json:"dirty_healed,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	ep := s.epoch.Load()
	snap := MetricsSnapshot{
		Epoch:           ep.Seq,
		EpochAgeNs:      time.Since(ep.Created).Nanoseconds(),
		QueueDepth:      len(s.mutCh),
		Accepted:        s.accepted.Load(),
		Applied:         s.applied.Load(),
		Batches:         s.met.batches.Load(),
		AbortedBatches:  s.met.abortedBatches.Load(),
		Repairs:         s.met.repairs.Load(),
		Escalations:     s.met.escalations.Load(),
		RepairRounds:    s.met.repairRounds.Load(),
		RecomputeRounds: s.met.recomputeRounds.Load(),
		Standing:        s.met.standing.Load(),
		Endpoints:       make(map[string]EndpointSnapshot, len(s.met.endpoints)),
	}
	if s.cfg.WAL != nil {
		m := s.cfg.WAL.Metrics()
		ws := &WALSnapshot{
			Seq: m.Seq, Records: m.Records, Batches: m.Batches,
			Syncs: m.Syncs, Compactions: m.Compactions, Depth: m.Depth,
			FsyncMaxNs:       m.FsyncMax.Nanoseconds(),
			Failed:           s.met.walFailed.Load(),
			Gen:              m.Gen,
			Fence:            m.Fence,
			DurableBytes:     m.DurableBytes,
			LabelSeq:         m.LabelSeq,
			LabelRecords:     m.LabelRecords,
			RecoveryStanding: s.met.recoveryStanding.Load(),
			ReadyNs:          s.met.readyNs.Load(),
			LabelNs:          s.met.labelNs.Load(),
			WarmStart:        s.met.warmStart.Load() != 0,
			DirtyHealed:      s.met.dirtyHealed.Load(),
		}
		if m.Syncs > 0 {
			ws.FsyncAvgNs = m.FsyncTotal.Nanoseconds() / int64(m.Syncs)
		}
		if rec := s.cfg.Recovered; rec != nil {
			ws.RecoveredSeq = rec.Seq
			ws.RecoveredBatches = rec.Batches
			ws.RecoveredRecords = rec.Replayed
			ws.RecoveryTruncated = rec.Truncated()
			ws.RecoveryReason = rec.Reason
			ws.RecoveryNs = rec.RecoveryNs
		}
		snap.WAL = ws
	}
	for name, est := range s.met.endpoints {
		snap.Endpoints[name] = est.snapshot()
	}
	return writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	ep := s.epoch.Load()
	return writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}{"ok", ep.Seq})
}
