package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets is the number of power-of-two latency buckets: bucket i counts
// observations with latency < 256ns << i, so the range spans 256ns to ~17s
// with the last bucket absorbing everything slower.
const latBuckets = 27

// histogram is a lock-free power-of-two latency histogram. observe is
// called concurrently from request goroutines; snapshot quantiles are
// approximate (bucket upper bound), which is all a /metrics endpoint needs.
type histogram struct {
	count   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
	maxNs   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := 0
	if ns >= 256 {
		i = bits.Len64(ns>>8) - 0
		if ns&(ns-1) == 0 && ns>>8<<8 == ns {
			// exact powers land in the bucket whose bound they equal
			i--
		}
		if i >= latBuckets {
			i = latBuckets - 1
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the upper bound (in ns) of the bucket at which the
// cumulative count reaches q of the total, 0 when empty.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return float64(uint64(256) << i)
		}
	}
	return float64(h.maxNs.Load())
}

// endpointStats aggregates one endpoint's traffic.
type endpointStats struct {
	hits   atomic.Uint64 // requests admitted past the shed gate
	errors atomic.Uint64 // responses with status >= 400 (shed excluded)
	shed   atomic.Uint64 // 429 rejections at the concurrency limit
	lat    histogram
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.hits.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	e.lat.observe(d)
}

// EndpointSnapshot is one endpoint's /metrics view.
type EndpointSnapshot struct {
	Hits   uint64  `json:"hits"`
	Errors uint64  `json:"errors"`
	Shed   uint64  `json:"shed"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Hits:   e.hits.Load(),
		Errors: e.errors.Load(),
		Shed:   e.shed.Load(),
		P50Ns:  e.lat.quantile(0.50),
		P99Ns:  e.lat.quantile(0.99),
		MaxNs:  e.lat.maxNs.Load(),
	}
}

// metrics is the server-wide counter block. Endpoint names are fixed at
// construction so the /metrics JSON is schema-stable.
type metrics struct {
	batches         atomic.Uint64 // mutation batches applied and published
	abortedBatches  atomic.Uint64 // batches abandoned by shutdown mid-heal
	repairs         atomic.Uint64
	escalations     atomic.Uint64
	repairRounds    atomic.Uint64
	recomputeRounds atomic.Uint64
	standing        atomic.Uint64 // violations surviving repair+recompute

	walFailed        atomic.Uint64 // batches aborted because journaling failed
	recoveryStanding atomic.Uint64 // invariant violations found by the post-recovery sweep
	warmStart        atomic.Uint64 // 1 when the engines were seeded from a durable label epoch
	dirtyHealed      atomic.Uint64 // dirty nodes the warm start healed instead of recomputing
	readyNs          atomic.Int64  // recovery + construction + first publish, wall time
	labelNs          atomic.Int64  // label acquisition only: recompute+sweep (cold) or seed+heal-dirty (warm)

	endpoints map[string]*endpointStats
}

func newMetrics(names []string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointStats, len(names))}
	for _, n := range names {
		m.endpoints[n] = &endpointStats{}
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointStats { return m.endpoints[name] }
